package analysis

// //lbm: directive parsing. The annotation grammar (documented in
// DESIGN.md "Static-analysis contracts"):
//
//	//lbm:hot
//	    Marks a function as steady-state hot-path code: hotalloc forbids
//	    allocations, fmt/log calls and interface boxing inside it.
//
//	//lbm:ldm assume <name>=<int>... [budget=<bytes|NKiB>]
//	    Attached to the declaration enclosing a CPE kernel: pins the
//	    named size variables to their contract-maximum values so
//	    ldmbudget can bound the kernel's LDM working set, and optionally
//	    overrides the default 64 KiB budget (256KiB for SW26010-Pro-only
//	    kernels).
//
//	//lbm:traffic budget=<bytes> [assume <name>=<int>...]
//	    Attached to a //lbm:hot kernel: declares the per-cell main-memory
//	    traffic budget (the paper's §III-B model budgets ~380 B/cell for
//	    the fused D3Q19 step) that memtraffic checks the kernel's
//	    symbolic load/store estimate against. assume pins loop bounds the
//	    same way //lbm:ldm does; dotted names (assume d.Q=19) pin field
//	    selectors.
//
//	//lbm:nilsafe
//	    Attached to a type declaration: every pointer-receiver method of
//	    the type must nil-guard the receiver before touching its fields
//	    (spanpair enforces the zero-cost-off tracer contract).
//
// One comment line may carry several keys: `//lbm:hot traffic budget=380`
// is the hot marker and the traffic annotation in one line. Malformed
// values are diagnosed at the exact key=value position, never silently
// dropped.

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
	"unicode"
)

// directive is one parsed //lbm: comment.
type directive struct {
	// Kind is "hot", "ldm", "traffic", "nilsafe", ...
	Kind string
	// Args holds the key=value pairs (and bare words map to "true").
	Args map[string]string
	// Raw is the full comment text after //lbm:.
	Raw string
	// Pos is the position of the //lbm: comment itself; argPos locates
	// each key's key=value field for position-accurate diagnostics.
	Pos    token.Pos
	argPos map[string]token.Pos
}

// keyPos returns the position of one argument's key=value field, falling
// back to the directive position.
func (d *directive) keyPos(k string) token.Pos {
	if p, ok := d.argPos[k]; ok {
		return p
	}
	return d.Pos
}

// parseDirectives extracts //lbm: directives from a doc comment group.
func parseDirectives(doc *ast.CommentGroup) []directive {
	if doc == nil {
		return nil
	}
	var out []directive
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//lbm:")
		if !ok {
			continue
		}
		fields := splitFields(rest)
		if len(fields) == 0 {
			continue
		}
		base := c.Pos() + token.Pos(len("//lbm:"))
		d := directive{
			Kind:   fields[0].text,
			Args:   make(map[string]string),
			Raw:    rest,
			Pos:    c.Pos(),
			argPos: make(map[string]token.Pos),
		}
		for _, f := range fields[1:] {
			pos := base + token.Pos(f.off)
			if k, v, found := strings.Cut(f.text, "="); found {
				d.Args[k] = v
				d.argPos[k] = pos
			} else {
				d.Args[f.text] = "true"
				d.argPos[f.text] = pos
			}
		}
		out = append(out, d)
	}
	return out
}

type field struct {
	text string
	off  int // byte offset within the post-prefix directive text
}

// splitFields is strings.Fields with byte offsets preserved.
func splitFields(s string) []field {
	var out []field
	start := -1
	for i, r := range s {
		if unicode.IsSpace(r) {
			if start >= 0 {
				out = append(out, field{s[start:i], start})
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, field{s[start:], start})
	}
	return out
}

// funcDirective returns the first directive of the given kind on the
// function's doc comment, or nil.
func funcDirective(fn *ast.FuncDecl, kind string) *directive {
	for _, d := range parseDirectives(fn.Doc) {
		if d.Kind == kind {
			return &d
		}
	}
	return nil
}

// trafficDirective returns the //lbm:traffic annotation of a function:
// either a standalone //lbm:traffic line or traffic keys folded into the
// //lbm:hot line (`//lbm:hot traffic budget=380`). Nil when the function
// carries no traffic annotation.
func trafficDirective(fn *ast.FuncDecl) *directive {
	if d := funcDirective(fn, "traffic"); d != nil {
		return d
	}
	if d := funcDirective(fn, "hot"); d != nil {
		if _, ok := d.Args["traffic"]; ok {
			return d
		}
	}
	return nil
}

// parseByteSize parses "65536", "64KiB", "64KB" or "64K" into bytes.
func parseByteSize(s string) (int64, bool) {
	mult := int64(1)
	ls := strings.ToLower(s)
	for _, suf := range []struct {
		text string
		mult int64
	}{{"kib", 1024}, {"kb", 1024}, {"k", 1024}, {"mib", 1024 * 1024}, {"mb", 1024 * 1024}} {
		if strings.HasSuffix(ls, suf.text) {
			ls = strings.TrimSuffix(ls, suf.text)
			mult = suf.mult
			break
		}
	}
	n, err := strconv.ParseInt(ls, 10, 64)
	if err != nil {
		return 0, false
	}
	return n * mult, true
}

// hotFuncs returns the //lbm:hot-annotated function declarations of a
// package.
func hotFuncs(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && funcDirective(fn, "hot") != nil {
				out = append(out, fn)
			}
		}
	}
	return out
}

// nilsafeTypes returns the names of types annotated //lbm:nilsafe in the
// package (the directive may sit on the GenDecl or the TypeSpec doc).
func nilsafeTypes(pkg *Package) map[string]bool {
	out := make(map[string]bool)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declHas := hasDirective(gd.Doc, "nilsafe")
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if declHas || hasDirective(ts.Doc, "nilsafe") || hasDirective(ts.Comment, "nilsafe") {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

func hasDirective(doc *ast.CommentGroup, kind string) bool {
	for _, d := range parseDirectives(doc) {
		if d.Kind == kind {
			return true
		}
	}
	return false
}
