package analysis

// memtraffic is the static twin of the paper's §III-B memory-traffic
// model. The roofline argument there prices one fused D3Q19 collide+
// stream update at ~380 bytes of main-memory traffic per cell (19 pulls
// + 19 pushes of float64 populations plus the flag byte); SunwayLB's
// measured 77% memory-bandwidth efficiency stands or falls with that
// number. This rule keeps the host kernels honest against it: every
// //lbm:hot function must declare a per-cell byte budget
// (//lbm:traffic budget=N) and the analyzer's symbolic estimate of the
// kernel's per-cell loads and stores must not exceed it.
//
// The model:
//
//   - A "cell" is one iteration of an innermost unbounded loop — a loop
//     whose trip count loopTripCount cannot fold even after //lbm:traffic
//     assume pins (the spatial z/x/y sweeps; direction loops pinned by
//     assume q=19 are bounded and therefore priced inside the cell).
//   - An index expression costs the element size of the indexed
//     container iff the index depends on the cell: on an unbounded-loop
//     variable, on a loop-carried accumulator (declared outside the
//     candidate body, assigned inside it), or transitively through
//     assignments. Scratch arrays indexed only by bounded direction
//     loops (f[i], feq[i]) are register/LDM-class traffic and cost 0.
//   - Bounded loops multiply their body by the folded trip count.
//     Branches follow the bulk path: if-without-else prices the
//     condition only, if/else prices the dearer arm, a switch prices
//     its default arm (the Wall/MovingWall arms are boundary cells, not
//     bulk traffic).
//   - Calls to locally-defined closures are inlined with the argument
//     dependence bound to the parameters (the copyCell/relax helper
//     pattern); other calls price only their argument expressions.
//   - Compound assignments (x[i] += v) and ++/-- on a dependent element
//     price the element twice: a load and a store.
//
// The estimate is a model, not a measurement — it prices the bulk-path
// bytes a cache-less CPE would move, which is exactly the quantity the
// paper's §III-B budget is written in.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// trafficSizes prices element sizes like the 64-bit Sunway ABI.
var trafficSizes = types.StdSizes{WordSize: 8, MaxAlign: 8}

// AnalyzerMemTraffic is the memtraffic rule.
var AnalyzerMemTraffic = &Analyzer{
	Name: "memtraffic",
	Doc:  "//lbm:hot kernels must declare and meet a per-cell memory-traffic budget",
	Run:  runMemTraffic,
}

func runMemTraffic(pass *Pass) {
	for _, fn := range hotFuncs(pass.Pkg) {
		dir := trafficDirective(fn)
		assume, budget := parseTrafficDirective(pass, dir)
		est, hasLoops := estimateTraffic(pass.Pkg, fn, assume)
		if !hasLoops {
			// No unbounded loop survives the assume pins: the body is
			// O(1) per call and has no per-cell traffic to budget.
			continue
		}
		if budget < 0 {
			pass.Reportf(fn.Pos(),
				"//lbm:hot kernel %s has no per-cell traffic budget (estimate: %d B/cell); declare //lbm:traffic budget=N (the paper's §III-B model prices the fused step at ~380 B/cell)",
				fn.Name.Name, est)
			continue
		}
		if est > budget {
			pass.Reportf(fn.Pos(),
				"%s: estimated per-cell traffic %d B exceeds the declared //lbm:traffic budget=%d B",
				fn.Name.Name, est, budget)
		}
	}
}

// parseTrafficDirective extracts the assume pins and the budget from a
// //lbm:traffic directive (or the traffic keys of a //lbm:hot line).
// budget is -1 when absent. pass may be nil (the test/report hook), in
// which case malformed values are skipped silently.
func parseTrafficDirective(pass *Pass, dir *directive) (map[string]int64, int64) {
	assume := make(map[string]int64)
	budget := int64(-1)
	if dir == nil {
		return assume, budget
	}
	for k, v := range dir.Args {
		if v == "true" {
			continue // bare marker words (traffic, assume, ...)
		}
		n, ok := parseByteSize(v)
		if !ok {
			if pass != nil {
				pass.Reportf(dir.keyPos(k),
					"malformed //lbm:%s value %s=%s: want an integer or byte size like 64KiB", dir.Kind, k, v)
			}
			continue
		}
		if k == "budget" {
			budget = n
		} else {
			assume[k] = n
		}
	}
	return assume, budget
}

// TrafficEstimate pairs one //lbm:hot function's modelled per-cell bytes
// with its declared budget (-1 when the function declares none).
type TrafficEstimate struct {
	Func   string
	Bytes  int64
	Budget int64
}

// trafficEstimates computes the per-cell estimate for every //lbm:hot
// function of the package, in declaration order.
func trafficEstimates(pkg *Package) []TrafficEstimate {
	var out []TrafficEstimate
	for _, fn := range hotFuncs(pkg) {
		assume, budget := parseTrafficDirective(nil, trafficDirective(fn))
		bytes, _ := estimateTraffic(pkg, fn, assume)
		out = append(out, TrafficEstimate{Func: fn.Name.Name, Bytes: bytes, Budget: budget})
	}
	return out
}

// estimateTraffic models fn's per-cell traffic. The second result is
// false when the body has no unbounded loop (nothing to price per cell).
func estimateTraffic(pkg *Package, fn *ast.FuncDecl, assume map[string]int64) (int64, bool) {
	if fn.Body == nil {
		return 0, false
	}
	env := newEvalEnv(pkg.Info, fn, assume)
	loops := unboundedLoops(env, fn.Body)
	if len(loops) == 0 {
		return 0, false
	}
	var best int64
	for _, u := range loops {
		body := loopBody(u)
		if body == nil || containsUnbounded(loops, u, body) {
			continue // not innermost: an inner unbounded loop defines the cell
		}
		w := &trafficWalker{
			info:     pkg.Info,
			env:      env,
			deps:     cellDeps(pkg.Info, fn, loops, body),
			visiting: make(map[*ast.FuncLit]bool),
		}
		best = max(best, w.candidateCost(u))
	}
	return best, true
}

// unboundedLoops collects the loops of body whose trip count does not
// fold under env (range loops never fold: their extent is runtime data).
func unboundedLoops(env *evalEnv, body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			if _, ok := loopTripCount(env, s); !ok {
				out = append(out, s)
			}
		case *ast.RangeStmt:
			out = append(out, s)
		}
		return true
	})
	return out
}

// loopBody returns the block of a for or range statement.
func loopBody(s ast.Stmt) *ast.BlockStmt {
	switch l := s.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// containsUnbounded reports whether another unbounded loop sits inside
// body.
func containsUnbounded(loops []ast.Stmt, self ast.Stmt, body *ast.BlockStmt) bool {
	for _, v := range loops {
		if v != self && v.Pos() >= body.Pos() && v.End() <= body.End() {
			return true
		}
	}
	return false
}

// cellDeps computes the cell-dependence set for one candidate loop:
// seeded by every unbounded-loop variable and by loop-carried
// accumulators (objects declared outside the candidate body but
// assigned inside it, like a pack cursor k++), then closed transitively
// over the function's assignments.
func cellDeps(info *types.Info, fn *ast.FuncDecl, loops []ast.Stmt, body *ast.BlockStmt) map[types.Object]bool {
	deps := make(map[types.Object]bool)
	seed := func(id *ast.Ident) {
		if id == nil {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			deps[obj] = true
		}
	}
	for _, l := range loops {
		switch s := l.(type) {
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						seed(id)
					}
				}
			}
		case *ast.RangeStmt:
			if id, ok := s.Key.(*ast.Ident); ok {
				seed(id)
			}
			if id, ok := s.Value.(*ast.Ident); ok {
				seed(id)
			}
		}
	}
	// Loop-carried accumulators of this candidate.
	carried := func(id *ast.Ident) {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return
		}
		if obj.Pos() < body.Pos() || obj.Pos() >= body.End() {
			deps[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					carried(id)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok {
				carried(id)
			}
		}
		return true
	})
	// Transitive closure over assignments anywhere in the function (a
	// candidate's index often routes through values computed in the
	// enclosing spatial loops: rowBase := l.Idx(x, y, 0)).
	depExpr := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id]
				}
				if obj != nil && deps[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	mark := func(lhs, rhs ast.Expr) bool {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || deps[obj] || !depExpr(rhs) {
			return false
		}
		deps[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						if mark(s.Lhs[i], s.Rhs[i]) {
							changed = true
						}
					}
				} else if len(s.Rhs) == 1 {
					for _, lhs := range s.Lhs {
						if mark(lhs, s.Rhs[0]) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) && mark(name, s.Values[i]) {
						changed = true
					}
				}
			}
			return true
		})
	}
	return deps
}

// trafficWalker prices one candidate loop's per-iteration traffic.
type trafficWalker struct {
	info     *types.Info
	env      *evalEnv
	deps     map[types.Object]bool
	visiting map[*ast.FuncLit]bool
}

// candidateCost prices one iteration of the candidate loop: condition,
// post statement and body.
func (t *trafficWalker) candidateCost(loop ast.Stmt) int64 {
	switch s := loop.(type) {
	case *ast.ForStmt:
		return t.costExpr(s.Cond) + t.costStmt(s.Post) + t.costStmt(s.Body)
	case *ast.RangeStmt:
		var total int64
		if s.Value != nil {
			// `for _, v := range xs` loads one element per iteration.
			total = t.elemSize(s.X)
		}
		return total + t.costStmt(s.Body)
	}
	return 0
}

func (t *trafficWalker) costStmts(list []ast.Stmt) int64 {
	var total int64
	for _, st := range list {
		total += t.costStmt(st)
	}
	return total
}

func (t *trafficWalker) costStmt(st ast.Stmt) int64 {
	switch s := st.(type) {
	case nil:
		return 0
	case *ast.BlockStmt:
		return t.costStmts(s.List)
	case *ast.LabeledStmt:
		return t.costStmt(s.Stmt)
	case *ast.IfStmt:
		total := t.costStmt(s.Init) + t.costExpr(s.Cond)
		if s.Else != nil {
			total += max(t.costStmt(s.Body), t.costStmt(s.Else))
		}
		return total
	case *ast.SwitchStmt:
		total := t.costStmt(s.Init) + t.costExpr(s.Tag)
		return total + t.defaultArm(s.Body)
	case *ast.TypeSwitchStmt:
		return t.costStmt(s.Init) + t.costStmt(s.Assign) + t.defaultArm(s.Body)
	case *ast.ForStmt:
		trip, ok := loopTripCount(t.env, s)
		if !ok {
			trip = 1 // inner unbounded loops define their own candidate
		}
		return t.costStmt(s.Init) + trip*(t.costExpr(s.Cond)+t.costStmt(s.Body)+t.costStmt(s.Post))
	case *ast.RangeStmt:
		return t.costExpr(s.X) + t.costStmt(s.Body)
	case *ast.AssignStmt:
		var total int64
		for _, e := range s.Rhs {
			total += t.costExpr(e)
		}
		for _, e := range s.Lhs {
			total += t.costExpr(e)
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				// Compound ops read before they write.
				if ix, ok := e.(*ast.IndexExpr); ok && t.dep(ix.Index) {
					total += t.elemSize(ix.X)
				}
			}
		}
		return total
	case *ast.IncDecStmt:
		total := t.costExpr(s.X)
		if ix, ok := s.X.(*ast.IndexExpr); ok && t.dep(ix.Index) {
			total += t.elemSize(ix.X)
		}
		return total
	case *ast.ExprStmt:
		return t.costExpr(s.X)
	case *ast.ReturnStmt:
		var total int64
		for _, e := range s.Results {
			total += t.costExpr(e)
		}
		return total
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return 0
		}
		var total int64
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					total += t.costExpr(v)
				}
			}
		}
		return total
	case *ast.SendStmt:
		return t.costExpr(s.Chan) + t.costExpr(s.Value)
	case *ast.GoStmt:
		return t.costExpr(s.Call)
	case *ast.DeferStmt:
		return t.costExpr(s.Call)
	}
	return 0
}

// defaultArm prices a switch's default clause — the bulk path; the
// tagged arms handle boundary cells.
func (t *trafficWalker) defaultArm(body *ast.BlockStmt) int64 {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return t.costStmts(cc.Body)
		}
	}
	return 0
}

// costExpr prices the cell-dependent element accesses syntactically in
// e, inlining calls to locally-defined closures.
func (t *trafficWalker) costExpr(e ast.Expr) int64 {
	if e == nil {
		return 0
	}
	var total int64
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // priced at its call sites
		case *ast.CallExpr:
			if lit := t.closureFor(v.Fun); lit != nil {
				total += t.inlineCall(lit, v.Args)
				for _, a := range v.Args {
					total += t.costExpr(a)
				}
				return false
			}
		case *ast.IndexExpr:
			if t.dep(v.Index) {
				total += t.elemSize(v.X)
			}
		}
		return true
	})
	return total
}

// closureFor resolves an identifier with a unique function-literal
// assignment (the relax/copyCell helper pattern), or nil.
func (t *trafficWalker) closureFor(fun ast.Expr) *ast.FuncLit {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := t.info.Uses[id]
	if obj == nil {
		return nil
	}
	lit, _ := t.env.single[obj].(*ast.FuncLit)
	return lit
}

// inlineCall prices a closure body with the parameters bound to the
// arguments' cell-dependence.
func (t *trafficWalker) inlineCall(lit *ast.FuncLit, args []ast.Expr) int64 {
	if t.visiting[lit] {
		return 0
	}
	t.visiting[lit] = true
	defer delete(t.visiting, lit)
	var params []types.Object
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, name := range f.Names {
				params = append(params, t.info.Defs[name])
			}
		}
	}
	saved := make(map[types.Object]bool, len(params))
	for i, p := range params {
		if p == nil {
			continue
		}
		saved[p] = t.deps[p]
		t.deps[p] = i < len(args) && t.dep(args[i])
	}
	cost := t.costStmt(lit.Body)
	for p, v := range saved {
		t.deps[p] = v
	}
	return cost
}

// dep reports whether e references any cell-dependent object.
func (t *trafficWalker) dep(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := t.info.Uses[id]
			if obj == nil {
				obj = t.info.Defs[id]
			}
			if obj != nil && t.deps[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// elemSize prices one element access of the container expression x.
func (t *trafficWalker) elemSize(x ast.Expr) int64 {
	tv, ok := t.info.Types[x]
	if !ok || tv.Type == nil {
		return 8
	}
	typ := tv.Type.Underlying()
	if p, ok := typ.(*types.Pointer); ok {
		typ = p.Elem().Underlying()
	}
	var elem types.Type
	switch c := typ.(type) {
	case *types.Slice:
		elem = c.Elem()
	case *types.Array:
		elem = c.Elem()
	case *types.Map:
		elem = c.Elem()
	case *types.Basic:
		return 1 // string byte
	default:
		return 8
	}
	return trafficSizes.Sizeof(elem)
}
