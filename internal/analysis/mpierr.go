package analysis

// mpierr enforces the failure-model discipline of internal/mpi: every
// blocking operation returns a typed error (ErrRankDead, ErrTimeout,
// ErrWorldDown) precisely so that call sites can react instead of
// hanging — a call site that discards the error silently degrades the
// failure model back into hangs-by-another-name. Three checks:
//
//	mpierr/discard — a call to an error-returning mpi function whose
//	    result is dropped (expression statement or blank assignment).
//	mpierr/unused  — the captured error variable is never read.
//	mpierr/compare — a sentinel comparison err == mpi.ErrX, which breaks
//	    on wrapped errors; route it through errors.Is instead.
//
// (The panic-based variants Recv/Barrier/Wait abort the rank through the
// runtime's recovery path by design and need no handling at the call
// site; this rule covers the explicit-error API.)

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const mpiPkgPath = "sunwaylb/internal/mpi"

// AnalyzerMPIErr is the mpierr rule.
var AnalyzerMPIErr = &Analyzer{
	Name: "mpierr",
	Doc:  "errors from blocking mpi operations must be handled via errors.Is",
	Run:  runMPIErr,
}

func runMPIErr(pass *Pass) {
	info := pass.Info()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if name, yes := mpiErrCall(info, call); yes {
						pass.Reportf(call.Pos(),
							"error from mpi.%s is discarded; a dropped %s error turns rank failure back into a silent hang",
							name, name)
					}
				}
			case *ast.GoStmt:
				if name, yes := mpiErrCall(info, st.Call); yes {
					pass.Reportf(st.Call.Pos(), "error from mpi.%s is discarded by go statement", name)
				}
			case *ast.DeferStmt:
				if name, yes := mpiErrCall(info, st.Call); yes {
					pass.Reportf(st.Call.Pos(), "error from mpi.%s is discarded by defer statement", name)
				}
			case *ast.AssignStmt:
				checkAssign(pass, st)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, st)
			}
			return true
		})
	}
	checkUnusedErrs(pass)
}

// mpiErrCall reports whether call invokes an internal/mpi function or
// method whose last result is an error, returning its name.
func mpiErrCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
	default:
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || !isPkgPath(fn, mpiPkgPath) {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", false
	}
	last := res.At(res.Len() - 1).Type()
	if !isErrorType(last) {
		return "", false
	}
	return fn.Name(), true
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// checkAssign flags mpi errors assigned to the blank identifier.
func checkAssign(pass *Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, yes := mpiErrCall(pass.Info(), call)
	if !yes {
		return
	}
	// The error is the last result → the last LHS position.
	last := st.Lhs[len(st.Lhs)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(id.Pos(),
			"error from mpi.%s assigned to _; handle ErrRankDead/ErrTimeout/ErrWorldDown via errors.Is", name)
	}
}

// checkSentinelCompare flags err == mpi.ErrX / err != mpi.ErrX.
func checkSentinelCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		sel, ok := side.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		obj := pass.Info().Uses[sel.Sel]
		if obj == nil || !isPkgPath(obj, mpiPkgPath) {
			continue
		}
		if _, isVar := obj.(*types.Var); !isVar || !strings.HasPrefix(obj.Name(), "Err") {
			continue
		}
		pass.Reportf(be.Pos(),
			"direct comparison with mpi.%s misses wrapped errors; use errors.Is(err, mpi.%s)", obj.Name(), obj.Name())
	}
}

// checkUnusedErrs flags error variables captured from mpi calls that are
// never read afterwards.
func checkUnusedErrs(pass *Pass) {
	info := pass.Info()
	// Gather candidate objects: err idents defined as the last LHS of an
	// mpi error-returning call.
	candidates := make(map[types.Object]*ast.Ident)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok || st.Tok != token.DEFINE || len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, yes := mpiErrCall(info, call); !yes {
				return true
			}
			last, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident)
			if !ok || last.Name == "_" {
				return true
			}
			if obj := info.Defs[last]; obj != nil {
				candidates[obj] = last
			}
			return true
		})
	}
	if len(candidates) == 0 {
		return
	}
	for _, obj := range info.Uses {
		delete(candidates, obj)
	}
	for obj, id := range candidates {
		pass.Reportf(id.Pos(), "mpi error %s is captured but never checked", obj.Name())
	}
}
