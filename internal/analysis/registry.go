package analysis

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerLDMBudget,
		AnalyzerMPIErr,
		AnalyzerSpanPair,
		AnalyzerHotAlloc,
		AnalyzerDetFloat,
		AnalyzerGoLeak,
		AnalyzerLockSafe,
		AnalyzerChanProto,
		AnalyzerMemTraffic,
	}
}

// ByName resolves a comma-separated rule selection; empty selects all.
// Unknown names are returned rather than silently dropped — a typo in a
// CI rule list must fail the build, not skip the check.
func ByName(names []string) (selected []*Analyzer, unknown []string) {
	if len(names) == 0 {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	for _, n := range names {
		if a, ok := byName[n]; ok {
			selected = append(selected, a)
		} else {
			unknown = append(unknown, n)
		}
	}
	return selected, unknown
}
