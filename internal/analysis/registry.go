package analysis

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerLDMBudget,
		AnalyzerMPIErr,
		AnalyzerSpanPair,
		AnalyzerHotAlloc,
		AnalyzerDetFloat,
	}
}

// ByName resolves a comma-separated rule selection; empty selects all.
func ByName(names []string) []*Analyzer {
	if len(names) == 0 {
		return All()
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		if a, ok := byName[n]; ok {
			out = append(out, a)
		}
	}
	return out
}
