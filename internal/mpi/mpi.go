// Package mpi is an in-process message-passing runtime that mirrors the
// subset of MPI used by SunwayLB: point-to-point send/receive (blocking and
// non-blocking), barriers, reductions, broadcast and gather, and a 2-D
// Cartesian communicator with the 8-neighbour topology of the paper's
// domain decomposition (§IV-C-1).
//
// Ranks execute as goroutines inside one OS process, which makes
// multi-rank runs deterministic, race-detectable and directly comparable
// with the serial solver — the functional-correctness half of the
// extreme-scale substitution (the performance half lives in
// internal/network and internal/scaling).
package mpi

import (
	"fmt"
	"sync"
)

// Message is the payload of a point-to-point transfer: a float64 body
// (populations) and an optional byte sidecar (cell flags).
type Message struct {
	Data []float64
	Aux  []byte
}

type chanKey struct{ src, dst, tag int }

// mailbox is one ordered (src, dst, tag) message stream. Sends never
// block (the queue is unbounded) and receives match in posting order,
// which is the MPI ordering guarantee the halo exchange relies on.
type mailbox struct {
	mu      sync.Mutex
	queue   []Message
	waiters []chan Message
}

// put delivers a message: to the oldest waiting receiver if any,
// otherwise onto the queue.
func (mb *mailbox) put(m Message) {
	mb.mu.Lock()
	if len(mb.waiters) > 0 {
		w := mb.waiters[0]
		mb.waiters = mb.waiters[1:]
		mb.mu.Unlock()
		w <- m
		return
	}
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
}

// get returns a channel that will yield the next message in stream order.
func (mb *mailbox) get() <-chan Message {
	ch := make(chan Message, 1)
	mb.mu.Lock()
	if len(mb.queue) > 0 {
		m := mb.queue[0]
		mb.queue = mb.queue[1:]
		mb.mu.Unlock()
		ch <- m
		return ch
	}
	mb.waiters = append(mb.waiters, ch)
	mb.mu.Unlock()
	return ch
}

// World owns the communication state for a fixed number of ranks.
type World struct {
	size int

	mu    sync.Mutex
	boxes map[chanKey]*mailbox

	barrier struct {
		sync.Mutex
		cond  *sync.Cond
		count int
		gen   int
	}
}

// internal collective tags live in a reserved negative range so they never
// collide with user tags (which must be ≥ 0).
const (
	tagReduce = -1 - iota
	tagBcast
	tagGather
	tagAllgather
	tagAlltoall
)

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", size)
	}
	w := &World{size: size, boxes: make(map[chanKey]*mailbox)}
	w.barrier.cond = sync.NewCond(&w.barrier.Mutex)
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// box returns (lazily creating) the mailbox for a (src, dst, tag) triple.
func (w *World) box(src, dst, tag int) *mailbox {
	k := chanKey{src, dst, tag}
	w.mu.Lock()
	defer w.mu.Unlock()
	mb, ok := w.boxes[k]
	if !ok {
		mb = &mailbox{}
		w.boxes[k] = mb
	}
	return mb
}

// Comm is one rank's handle on the world.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// validate panics on out-of-range peers or negative user tags; these are
// programming errors, not runtime conditions.
func (c *Comm) validate(peer, tag int) {
	if peer < 0 || peer >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", peer, c.world.size))
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: user tag %d must be non-negative", tag))
	}
}

// Send delivers a message to dst. The transport buffers without bound, so
// Send never blocks (MPI buffered-send semantics).
func (c *Comm) Send(dst, tag int, m Message) {
	c.validate(dst, tag)
	c.world.box(c.rank, dst, tag).put(m)
}

// Recv blocks until a message with the given source and tag arrives.
// Receives on one (src, tag) stream complete in message order.
func (c *Comm) Recv(src, tag int) Message {
	c.validate(src, tag)
	return <-c.world.box(src, c.rank, tag).get()
}

// Request represents an outstanding non-blocking operation.
type Request struct {
	done chan struct{}
	msg  Message
	recv bool
}

// Wait blocks until the operation completes; for receives it returns the
// message.
func (r *Request) Wait() Message {
	<-r.done
	return r.msg
}

// Isend starts a non-blocking send. The returned request completes when
// the message has been handed to the transport (buffered), matching MPI's
// completion-not-delivery semantics; with an unbounded transport that is
// immediately.
func (c *Comm) Isend(dst, tag int, m Message) *Request {
	c.validate(dst, tag)
	r := &Request{done: make(chan struct{})}
	c.world.box(c.rank, dst, tag).put(m)
	close(r.done)
	return r
}

// Irecv starts a non-blocking receive. Requests posted on the same
// (src, tag) stream match arriving messages in posting order.
func (c *Comm) Irecv(src, tag int) *Request {
	c.validate(src, tag)
	r := &Request{done: make(chan struct{}), recv: true}
	ch := c.world.box(src, c.rank, tag).get()
	go func() {
		r.msg = <-ch
		close(r.done)
	}()
	return r
}

// WaitAll waits for every request.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	b := &c.world.barrier
	b.Lock()
	gen := b.gen
	b.count++
	if b.count == c.world.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.Unlock()
}

// AllreduceSum returns the sum of v over all ranks, on every rank.
func (c *Comm) AllreduceSum(v float64) float64 {
	return c.allreduce(v, func(a, b float64) float64 { return a + b })
}

// AllreduceMax returns the maximum of v over all ranks, on every rank.
func (c *Comm) AllreduceMax(v float64) float64 {
	return c.allreduce(v, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllreduceMin returns the minimum of v over all ranks, on every rank.
func (c *Comm) AllreduceMin(v float64) float64 {
	return c.allreduce(v, func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	})
}

func (c *Comm) allreduce(v float64, op func(a, b float64) float64) float64 {
	w := c.world
	if w.size == 1 {
		return v
	}
	if c.rank == 0 {
		acc := v
		for r := 1; r < w.size; r++ {
			m := <-w.box(r, 0, tagReduce).get()
			acc = op(acc, m.Data[0])
		}
		for r := 1; r < w.size; r++ {
			w.box(0, r, tagBcast).put(Message{Data: []float64{acc}})
		}
		return acc
	}
	w.box(c.rank, 0, tagReduce).put(Message{Data: []float64{v}})
	m := <-w.box(0, c.rank, tagBcast).get()
	return m.Data[0]
}

// Bcast distributes root's message to every rank and returns it.
func (c *Comm) Bcast(root int, m Message) Message {
	w := c.world
	if w.size == 1 {
		return m
	}
	if c.rank == root {
		for r := 0; r < w.size; r++ {
			if r != root {
				w.box(root, r, tagBcast).put(m)
			}
		}
		return m
	}
	return <-w.box(root, c.rank, tagBcast).get()
}

// Gather collects one message from every rank at root; non-root ranks get
// nil. The result is indexed by rank.
func (c *Comm) Gather(root int, m Message) []Message {
	w := c.world
	if c.rank == root {
		out := make([]Message, w.size)
		out[root] = m
		for r := 0; r < w.size; r++ {
			if r != root {
				out[r] = <-w.box(r, root, tagGather).get()
			}
		}
		return out
	}
	w.box(c.rank, root, tagGather).put(m)
	return nil
}

// Allgather collects one message from every rank on every rank.
func (c *Comm) Allgather(m Message) []Message {
	w := c.world
	out := make([]Message, w.size)
	out[c.rank] = m
	for r := 0; r < w.size; r++ {
		if r == c.rank {
			continue
		}
		w.box(c.rank, r, tagAllgather).put(m)
	}
	for r := 0; r < w.size; r++ {
		if r == c.rank {
			continue
		}
		out[r] = <-w.box(r, c.rank, tagAllgather).get()
	}
	return out
}

// Alltoall exchanges one message per rank pair: msgs[r] is sent to rank r
// and the result's slot r holds the message received from rank r (own slot
// passes through locally).
func (c *Comm) Alltoall(msgs []Message) []Message {
	w := c.world
	if len(msgs) != w.size {
		panic(fmt.Sprintf("mpi: Alltoall needs %d messages, got %d", w.size, len(msgs)))
	}
	out := make([]Message, w.size)
	out[c.rank] = msgs[c.rank]
	for r := 0; r < w.size; r++ {
		if r != c.rank {
			w.box(c.rank, r, tagAlltoall).put(msgs[r])
		}
	}
	for r := 0; r < w.size; r++ {
		if r != c.rank {
			out[r] = <-w.box(r, c.rank, tagAlltoall).get()
		}
	}
	return out
}

// Run spawns size ranks executing body concurrently and waits for all of
// them. The first non-nil error (by rank order) is returned.
func Run(size int, body func(c *Comm) error) error {
	w, err := NewWorld(size)
	if err != nil {
		return err
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for r, e := range errs {
		if e != nil {
			return fmt.Errorf("mpi: rank %d: %w", r, e)
		}
	}
	return nil
}
