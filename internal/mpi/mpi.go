// Package mpi is an in-process message-passing runtime that mirrors the
// subset of MPI used by SunwayLB: point-to-point send/receive (blocking and
// non-blocking), barriers, reductions, broadcast and gather, and a 2-D
// Cartesian communicator with the 8-neighbour topology of the paper's
// domain decomposition (§IV-C-1).
//
// Ranks execute as goroutines inside one OS process, which makes
// multi-rank runs deterministic, race-detectable and directly comparable
// with the serial solver — the functional-correctness half of the
// extreme-scale substitution (the performance half lives in
// internal/network and internal/scaling).
//
// The runtime also models failure (see failure.go): ranks can be marked
// dead, the whole world can be torn down, receives can carry deadlines,
// and a FaultHook can drop, duplicate or corrupt messages in transit. No
// blocking operation hangs forever once its peer is unreachable — it
// returns (or panics into the Run recovery with) a typed error instead,
// which is what the self-healing supervisor in internal/psolve builds on.
package mpi

import (
	"fmt"
	"sync"
	"time"

	"sunwaylb/internal/trace"
)

// Message is the payload of a point-to-point transfer: a float64 body
// (populations) and an optional byte sidecar (cell flags).
type Message struct {
	Data []float64
	Aux  []byte
	// flow carries the trace flow id linking this message's send event
	// to its receive event (0 when tracing is off).
	flow uint64
}

type chanKey struct{ src, dst, tag int }

// mailbox is one ordered (src, dst, tag) message stream. Sends never
// block (the queue is unbounded) and receives match in posting order,
// which is the MPI ordering guarantee the halo exchange relies on.
type mailbox struct {
	mu      sync.Mutex
	queue   []Message
	waiters []chan Message
}

// put delivers a message: to the oldest waiting receiver if any,
// otherwise onto the queue. Delivery happens under the mailbox lock
// (waiter channels are buffered, so the send cannot block), which lets
// cancel reason about whether a waiter has been handed a message.
func (mb *mailbox) put(m Message) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if len(mb.waiters) > 0 {
		w := mb.waiters[0]
		mb.waiters = mb.waiters[1:]
		w <- m
		return
	}
	mb.queue = append(mb.queue, m)
}

// get returns a channel that will yield the next message in stream order.
// A receiver that gives up (timeout, dead peer) must call cancel with the
// same channel so a later message is not swallowed by an abandoned waiter.
func (mb *mailbox) get() chan Message {
	ch := make(chan Message, 1)
	mb.mu.Lock()
	if len(mb.queue) > 0 {
		m := mb.queue[0]
		mb.queue = mb.queue[1:]
		mb.mu.Unlock()
		ch <- m
		return ch
	}
	mb.waiters = append(mb.waiters, ch)
	mb.mu.Unlock()
	return ch
}

// tryGet pops the head of the queue without registering a waiter.
func (mb *mailbox) tryGet() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if len(mb.queue) == 0 {
		return Message{}, false
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	return m, true
}

// cancel deregisters an abandoned waiter. If a message was already
// delivered into the channel, it is requeued at the head so stream order
// is preserved for the next receiver.
func (mb *mailbox) cancel(ch chan Message) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, w := range mb.waiters {
		if w == ch {
			mb.waiters = append(mb.waiters[:i], mb.waiters[i+1:]...)
			return
		}
	}
	select {
	case m := <-ch:
		mb.queue = append([]Message{m}, mb.queue...)
	default:
	}
}

// World owns the communication state for a fixed number of ranks.
type World struct {
	size int

	mu    sync.Mutex
	boxes map[chanKey]*mailbox

	barrier struct {
		sync.Mutex
		cond  *sync.Cond
		count int
		gen   int
	}

	// Failure state (see failure.go).
	fmu           sync.Mutex
	down          bool
	cause         error         // first failure cause (nil while healthy)
	dead          map[int]error // rank → why unreachable (nil = clean exit)
	notify        chan struct{} // closed and replaced on every state change
	recvTimeout   time.Duration
	hook          FaultHook
	tracer        *trace.Tracer
	detector      *PhiDetector // nil = deadline-only failure detection
	containPanics bool         // bulkhead mode: rank panics become errors
}

// internal collective tags live in a reserved negative range so they never
// collide with user tags (which must be ≥ 0).
const (
	tagReduce = -1 - iota
	tagBcast
	tagGather
	tagAllgather
	tagAlltoall
)

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", size)
	}
	w := &World{
		size:   size,
		boxes:  make(map[chanKey]*mailbox),
		dead:   make(map[int]error),
		notify: make(chan struct{}),
	}
	w.barrier.cond = sync.NewCond(&w.barrier.Mutex)
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// box returns (lazily creating) the mailbox for a (src, dst, tag) triple.
func (w *World) box(src, dst, tag int) *mailbox {
	k := chanKey{src, dst, tag}
	w.mu.Lock()
	defer w.mu.Unlock()
	mb, ok := w.boxes[k]
	if !ok {
		mb = &mailbox{}
		w.boxes[k] = mb
	}
	return mb
}

// deliver hands a message to the transport, consulting the fault hook for
// user messages (collectives on negative tags are modelled as reliable).
func (w *World) deliver(src, dst, tag int, m Message) {
	copies := 1
	if h := w.faultHook(); h != nil && tag >= 0 {
		copies = h.OnSend(src, dst, tag, m.Data, m.Aux)
	}
	mb := w.box(src, dst, tag)
	for i := 0; i < copies; i++ {
		mb.put(m)
	}
}

// SetTracer installs a rank-level tracer (nil removes it): blocking
// receives, barriers and collectives become spans, point-to-point
// messages become cross-rank flow events and rank deaths become instants
// on the "mpi" track. Install before RunWorld starts ranks.
func (w *World) SetTracer(t *trace.Tracer) {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	w.tracer = t
}

// Tracer returns the installed tracer (nil when tracing is off).
func (w *World) Tracer() *trace.Tracer {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.tracer
}

// Comm is one rank's handle on the world.
type Comm struct {
	world *World
	rank  int
	// tr is this rank's trace handle; nil (a no-op recorder) when the
	// world has no tracer. Bound at Comm construction so the hot paths
	// never take the world's failure lock to trace.
	tr *trace.RankTracer
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// World returns the underlying world (for failure control).
func (c *Comm) World() *World { return c.world }

// Trace returns this rank's trace handle (nil, a no-op recorder, when
// the world has no tracer). Instrumented layers above mpi (psolve, the
// supervisor) share the same per-rank timeline through it.
func (c *Comm) Trace() *trace.RankTracer { return c.tr }

// validate panics on out-of-range peers or negative user tags; these are
// programming errors, not runtime conditions.
func (c *Comm) validate(peer, tag int) {
	if peer < 0 || peer >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", peer, c.world.size))
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: user tag %d must be non-negative", tag))
	}
}

// Send delivers a message to dst. The transport buffers without bound, so
// Send never blocks (MPI buffered-send semantics).
func (c *Comm) Send(dst, tag int, m Message) {
	c.validate(dst, tag)
	if c.tr != nil {
		m.flow = c.tr.NextFlow()
		c.tr.FlowOut(trace.Wall, trace.TrackMPI, "msg", c.tr.Now(), m.flow, float64(dst))
	}
	c.world.deliver(c.rank, dst, tag, m)
}

// Recv blocks until a message with the given source and tag arrives.
// Receives on one (src, tag) stream complete in message order. If the
// peer dies, exits, the world is torn down, or the world receive deadline
// expires, Recv aborts the calling rank with a typed error that Run and
// RunWorld convert into the rank's error return — it never hangs forever.
// Use RecvE for an explicit error return.
func (c *Comm) Recv(src, tag int) Message {
	m, err := c.RecvE(src, tag)
	if err != nil {
		panic(rankPanic{err})
	}
	return m
}

// RecvE is Recv with an explicit error: ErrRankDead when the source rank
// died or exited with no more queued messages, ErrWorldDown after
// teardown, ErrTimeout past the world receive deadline.
func (c *Comm) RecvE(src, tag int) (Message, error) {
	c.validate(src, tag)
	return c.recvTraced(src, tag, c.world.timeout())
}

// RecvTimeout is RecvE with an explicit deadline overriding the world
// default (0 = wait forever, subject to failure detection).
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) (Message, error) {
	c.validate(src, tag)
	return c.recvTraced(src, tag, d)
}

// recvTraced wraps the blocking receive in a trace span plus the flow
// terminator connecting the matched send's arrow.
func (c *Comm) recvTraced(src, tag int, timeout time.Duration) (Message, error) {
	if c.tr == nil {
		return c.recvAny(src, tag, timeout)
	}
	c.tr.Begin(trace.Wall, trace.TrackMPI, "recv", c.tr.Now())
	m, err := c.recvAny(src, tag, timeout)
	now := c.tr.Now()
	if err == nil && m.flow != 0 {
		c.tr.FlowIn(trace.Wall, trace.TrackMPI, "msg", now, m.flow, float64(src))
	}
	if err != nil {
		c.tr.Instant(trace.Wall, trace.TrackMPI, "recv-failed", now)
	}
	c.tr.End(trace.Wall, trace.TrackMPI, now)
	return m, err
}

// recvInternal receives on a reserved collective tag, aborting the rank
// on failure like Recv.
func (c *Comm) recvInternal(src, tag int) Message {
	m, err := c.recvAny(src, tag, c.world.timeout())
	if err != nil {
		panic(rankPanic{err})
	}
	return m
}

// Request represents an outstanding non-blocking operation.
type Request struct {
	done chan struct{}
	msg  Message
	err  error
}

// Wait blocks until the operation completes; for receives it returns the
// message. A failed receive aborts the rank (see Recv); use WaitE for an
// explicit error.
func (r *Request) Wait() Message {
	<-r.done
	if r.err != nil {
		panic(rankPanic{r.err})
	}
	return r.msg
}

// WaitE blocks until the operation completes and returns its outcome.
func (r *Request) WaitE() (Message, error) {
	<-r.done
	return r.msg, r.err
}

// Isend starts a non-blocking send. The returned request completes when
// the message has been handed to the transport (buffered), matching MPI's
// completion-not-delivery semantics; with an unbounded transport that is
// immediately.
func (c *Comm) Isend(dst, tag int, m Message) *Request {
	c.validate(dst, tag)
	if c.tr != nil {
		m.flow = c.tr.NextFlow()
		c.tr.FlowOut(trace.Wall, trace.TrackMPI, "msg", c.tr.Now(), m.flow, float64(dst))
	}
	r := &Request{done: make(chan struct{})}
	c.world.deliver(c.rank, dst, tag, m)
	close(r.done)
	return r
}

// Irecv starts a non-blocking receive. Requests posted on the same
// (src, tag) stream match arriving messages in posting order. The
// receiving goroutine terminates (with an error recorded on the request)
// when the peer becomes unreachable, so failure paths leak no goroutines.
func (c *Comm) Irecv(src, tag int) *Request {
	c.validate(src, tag)
	r := &Request{done: make(chan struct{})}
	mb := c.world.box(src, c.rank, tag)
	ch := mb.get() // register now: waiters match in posting order
	timeout := c.world.timeout()
	go func() {
		r.msg, r.err = c.recvOn(mb, src, tag, ch, timeout)
		// The helper goroutine records only instant-class events (flow
		// terminators), never spans, so the rank's span timeline stays
		// single-writer and well nested.
		if c.tr != nil && r.err == nil && r.msg.flow != 0 {
			c.tr.FlowIn(trace.Wall, trace.TrackMPI, "msg", c.tr.Now(), r.msg.flow, float64(src))
		}
		close(r.done)
	}()
	return r
}

// WaitAll waits for every request.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// Barrier blocks until every rank has entered it, aborting the rank if
// the world fails or a rank becomes unreachable (a barrier with a dead
// member can never complete). Use BarrierE for an explicit error.
func (c *Comm) Barrier() {
	if err := c.BarrierE(); err != nil {
		panic(rankPanic{err})
	}
}

// BarrierE is Barrier with an explicit error return.
func (c *Comm) BarrierE() error {
	defer c.tr.Scope(trace.TrackMPI, "barrier")()
	w := c.world
	b := &w.barrier
	b.Lock()
	gen := b.gen
	b.count++
	if b.count == w.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.Unlock()
		return nil
	}
	for gen == b.gen {
		if err := w.unreachableErr(); err != nil {
			b.count--
			b.Unlock()
			return fmt.Errorf("mpi: barrier cannot complete: %w", err)
		}
		b.cond.Wait()
	}
	b.Unlock()
	return nil
}

// AllreduceSum returns the sum of v over all ranks, on every rank.
func (c *Comm) AllreduceSum(v float64) float64 {
	return c.allreduce(v, func(a, b float64) float64 { return a + b })
}

// AllreduceMax returns the maximum of v over all ranks, on every rank.
func (c *Comm) AllreduceMax(v float64) float64 {
	return c.allreduce(v, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllreduceMin returns the minimum of v over all ranks, on every rank.
func (c *Comm) AllreduceMin(v float64) float64 {
	return c.allreduce(v, func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	})
}

func (c *Comm) allreduce(v float64, op func(a, b float64) float64) float64 {
	defer c.tr.Scope(trace.TrackMPI, "allreduce")()
	w := c.world
	if w.size == 1 {
		return v
	}
	if c.rank == 0 {
		acc := v
		for r := 1; r < w.size; r++ {
			m := c.recvInternal(r, tagReduce)
			acc = op(acc, m.Data[0])
		}
		for r := 1; r < w.size; r++ {
			w.deliver(0, r, tagBcast, Message{Data: []float64{acc}})
		}
		return acc
	}
	w.deliver(c.rank, 0, tagReduce, Message{Data: []float64{v}})
	m := c.recvInternal(0, tagBcast)
	return m.Data[0]
}

// Bcast distributes root's message to every rank and returns it.
func (c *Comm) Bcast(root int, m Message) Message {
	defer c.tr.Scope(trace.TrackMPI, "bcast")()
	w := c.world
	if w.size == 1 {
		return m
	}
	if c.rank == root {
		for r := 0; r < w.size; r++ {
			if r != root {
				w.deliver(root, r, tagBcast, m)
			}
		}
		return m
	}
	return c.recvInternal(root, tagBcast)
}

// Gather collects one message from every rank at root; non-root ranks get
// nil. The result is indexed by rank.
func (c *Comm) Gather(root int, m Message) []Message {
	defer c.tr.Scope(trace.TrackMPI, "gather")()
	w := c.world
	if c.rank == root {
		out := make([]Message, w.size)
		out[root] = m
		for r := 0; r < w.size; r++ {
			if r != root {
				out[r] = c.recvInternal(r, tagGather)
			}
		}
		return out
	}
	w.deliver(c.rank, root, tagGather, m)
	return nil
}

// Allgather collects one message from every rank on every rank.
func (c *Comm) Allgather(m Message) []Message {
	defer c.tr.Scope(trace.TrackMPI, "allgather")()
	w := c.world
	out := make([]Message, w.size)
	out[c.rank] = m
	for r := 0; r < w.size; r++ {
		if r == c.rank {
			continue
		}
		w.deliver(c.rank, r, tagAllgather, m)
	}
	for r := 0; r < w.size; r++ {
		if r == c.rank {
			continue
		}
		out[r] = c.recvInternal(r, tagAllgather)
	}
	return out
}

// Alltoall exchanges one message per rank pair: msgs[r] is sent to rank r
// and the result's slot r holds the message received from rank r (own slot
// passes through locally).
func (c *Comm) Alltoall(msgs []Message) []Message {
	w := c.world
	if len(msgs) != w.size {
		panic(fmt.Sprintf("mpi: Alltoall needs %d messages, got %d", w.size, len(msgs)))
	}
	out := make([]Message, w.size)
	out[c.rank] = msgs[c.rank]
	for r := 0; r < w.size; r++ {
		if r != c.rank {
			w.deliver(c.rank, r, tagAlltoall, msgs[r])
		}
	}
	for r := 0; r < w.size; r++ {
		if r != c.rank {
			out[r] = c.recvInternal(r, tagAlltoall)
		}
	}
	return out
}

// Run spawns size ranks executing body concurrently and waits for all of
// them. The first non-nil error (by rank order) is returned.
func Run(size int, body func(c *Comm) error) error {
	w, err := NewWorld(size)
	if err != nil {
		return err
	}
	return RunWorld(w, body)
}

// RunWorld executes body on every rank of an existing world (letting the
// caller install fault hooks or receive deadlines first). A rank that
// returns an error — or whose blocking operation aborts on a failure —
// is marked dead so peers waiting on it unblock with ErrRankDead instead
// of deadlocking; a rank that returns nil is marked exited, with the same
// effect once its queued messages are drained. The first non-nil error
// (by rank order) is returned.
func RunWorld(w *World, body func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if rp, ok := p.(rankPanic); ok {
						errs[rank] = rp.err
					} else if w.panicsContained() {
						// Bulkhead mode: a tenant's bug kills its rank,
						// not the process hosting every tenant.
						errs[rank] = fmt.Errorf("mpi: rank %d: %v: %w", rank, p, ErrRankPanic)
					} else {
						panic(p) // genuine bug: crash loudly as before
					}
				}
				w.markExit(rank, errs[rank])
			}()
			errs[rank] = body(&Comm{world: w, rank: rank, tr: w.Tracer().ForRank(rank)})
		}(r)
	}
	wg.Wait()
	for r, e := range errs {
		if e != nil {
			return fmt.Errorf("mpi: rank %d: %w", r, e)
		}
	}
	return nil
}
