package mpi

// Phi-accrual failure detection (Hayashibara et al., "The φ Accrual
// Failure Detector"). The PR 1 runtime detected silent rank loss with a
// fixed receive deadline, which forces an ugly trade-off at scale: a
// deadline short enough to notice a dead neighbour quickly is short
// enough that a straggling-but-alive rank (OS jitter, a slow CG core
// group, rank 0 writing a checkpoint) trips it and triggers a spurious
// restart. The accrual detector replaces the binary deadline with a
// per-peer suspicion level φ derived from the observed heartbeat
// inter-arrival distribution: φ(t) = −log10 P(a heartbeat arrives later
// than t), so φ = 8 means the silence would be a 1-in-10⁸ event for
// that peer's own history. Slow peers widen their own distribution and
// automatically earn longer grace; dead peers accrue suspicion at a
// rate set by how regular they used to be.
//
// The detector is advisory: a blocking receive polls Suspect(src) and
// aborts with ErrSuspect (which wraps ErrRankDead) when the peer's
// silence crosses the threshold. It never marks ranks dead globally —
// a false suspicion aborts one receive, not the world — and the hard
// receive deadline remains as a last-resort bound for dropped messages.

import (
	"math"
	"sync"
	"time"
)

// Detector defaults. Threshold 8 follows the paper's recommended
// operating point (suspicion at a 10⁻⁸-probability silence).
const (
	// DefaultPhiThreshold is the suspicion level at which a peer is
	// considered dead.
	DefaultPhiThreshold = 8.0
	// defaultMinSamples is how many intervals a peer must have produced
	// before it can be suspected at all (a cold distribution is noise).
	defaultMinSamples = 4
	// defaultMinSilence is an absolute floor on the silence before
	// suspicion, so sub-millisecond heartbeat cadences cannot suspect a
	// peer that is merely descheduled or writing a checkpoint.
	defaultMinSilence = 100 * time.Millisecond
	// defaultCheckEvery is how often a blocked receive re-evaluates φ.
	defaultCheckEvery = 2 * time.Millisecond
	// phiWindow is the number of most-recent intervals kept per peer.
	phiWindow = 64
	// minSigma (seconds) floors the interval standard deviation so a
	// perfectly regular heartbeat stream cannot produce an infinitely
	// spiky distribution.
	minSigma = 1e-4
)

// PhiDetector accrues per-peer suspicion from heartbeat arrivals. All
// methods are safe for concurrent use by rank goroutines. Configure the
// exported fields before installing the detector with World.SetDetector.
type PhiDetector struct {
	// Threshold is the φ level at which Suspect fires.
	Threshold float64
	// MinSamples is the minimum number of recorded intervals before a
	// peer can be suspected.
	MinSamples int
	// MinSilence is the absolute minimum silence before suspicion,
	// regardless of φ.
	MinSilence time.Duration
	// CheckEvery is the polling cadence of blocked receives.
	CheckEvery time.Duration

	mu    sync.Mutex
	peers map[int]*peerState
	clock func() time.Time // injectable for tests; time.Now by default
}

// peerState is one peer's heartbeat history: the arrival time of the
// last heartbeat and a ring of recent inter-arrival intervals.
type peerState struct {
	last      time.Time
	intervals [phiWindow]float64 // seconds
	idx, n    int
}

// NewPhiDetector returns a detector with the default operating point.
func NewPhiDetector() *PhiDetector {
	return &PhiDetector{
		Threshold:  DefaultPhiThreshold,
		MinSamples: defaultMinSamples,
		MinSilence: defaultMinSilence,
		CheckEvery: defaultCheckEvery,
		peers:      make(map[int]*peerState),
		clock:      time.Now,
	}
}

// Heartbeat records a liveness beacon from the given rank. Ranks call
// this (via Comm.Heartbeat) once per step; the first beacon only arms
// the peer, subsequent beacons feed the interval distribution.
func (d *PhiDetector) Heartbeat(rank int) {
	now := d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.peers[rank]
	if p == nil {
		p = &peerState{last: now}
		d.peers[rank] = p
		return
	}
	dt := now.Sub(p.last).Seconds()
	p.last = now
	p.intervals[p.idx] = dt
	p.idx = (p.idx + 1) % phiWindow
	if p.n < phiWindow {
		p.n++
	}
}

// Phi returns the current suspicion level of the given rank: 0 for an
// unknown or freshly-heard-from peer, rising without bound as the
// silence outgrows the peer's own inter-arrival distribution.
func (d *PhiDetector) Phi(rank int) float64 {
	now := d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.phiLocked(rank, now)
}

// phiLocked computes φ at the given instant. Callers hold d.mu.
func (d *PhiDetector) phiLocked(rank int, now time.Time) float64 {
	p := d.peers[rank]
	if p == nil || p.n == 0 {
		return 0
	}
	var sum, sumSq float64
	for i := 0; i < p.n; i++ {
		v := p.intervals[i]
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(p.n)
	variance := sumSq/float64(p.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	sigma := math.Sqrt(variance)
	// Floor σ at a quarter of the mean (and an absolute minimum) so a
	// metronome-regular peer still gets a sane grace envelope.
	if floor := mean / 4; sigma < floor {
		sigma = floor
	}
	if sigma < minSigma {
		sigma = minSigma
	}
	t := now.Sub(p.last).Seconds()
	// P(heartbeat later than t) under N(mean, sigma²).
	pLater := 0.5 * math.Erfc((t-mean)/(sigma*math.Sqrt2))
	if pLater < 1e-300 {
		pLater = 1e-300 // cap φ at 300 instead of +Inf
	}
	return -math.Log10(pLater)
}

// Silence returns how long the given rank has been quiet (0 for an
// unknown peer).
func (d *PhiDetector) Silence(rank int) time.Duration {
	now := d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.peers[rank]
	if p == nil {
		return 0
	}
	return now.Sub(p.last)
}

// Suspect reports whether the rank should be treated as dead: it has
// produced enough intervals to have a distribution, has been silent
// longer than the absolute floor, and its φ has crossed the threshold.
func (d *PhiDetector) Suspect(rank int) bool {
	now := d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.peers[rank]
	if p == nil || p.n < d.MinSamples {
		return false
	}
	if now.Sub(p.last) < d.MinSilence {
		return false
	}
	return d.phiLocked(rank, now) >= d.Threshold
}

// SetDetector installs a phi-accrual failure detector (nil removes it).
// Blocked receives then poll the detector and abort with ErrSuspect
// when the source rank's silence crosses the threshold. Install before
// RunWorld starts ranks.
func (w *World) SetDetector(d *PhiDetector) {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	w.detector = d
}

// Detector returns the installed failure detector (nil when receives
// rely on deadlines alone).
func (w *World) Detector() *PhiDetector {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.detector
}

// Heartbeat records a liveness beacon for this rank on the world's
// failure detector; a no-op without one. Ranks call it once per step.
func (c *Comm) Heartbeat() {
	if d := c.world.Detector(); d != nil {
		d.Heartbeat(c.rank)
	}
}
