package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeClock drives a detector deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newClockedDetector() (*PhiDetector, *fakeClock) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	d := NewPhiDetector()
	d.clock = fc.now
	return d, fc
}

func beat(d *PhiDetector, fc *fakeClock, rank, n int, every time.Duration) {
	for i := 0; i < n; i++ {
		d.Heartbeat(rank)
		fc.advance(every)
	}
}

func TestPhiAccruesOverSilence(t *testing.T) {
	d, fc := newClockedDetector()
	beat(d, fc, 1, 20, 10*time.Millisecond)
	if phi := d.Phi(1); phi > d.Threshold {
		t.Fatalf("phi %.2f already past threshold right after a heartbeat", phi)
	}
	if d.Suspect(1) {
		t.Fatal("peer suspected while heartbeating regularly")
	}
	// A silence far beyond the distribution (and the MinSilence floor)
	// must accrue past the threshold.
	fc.advance(2 * time.Second)
	if phi := d.Phi(1); phi < d.Threshold {
		t.Fatalf("phi %.2f below threshold after 2s silence on a 10ms cadence", phi)
	}
	if !d.Suspect(1) {
		t.Fatal("peer not suspected after 2s silence on a 10ms cadence")
	}
}

func TestPhiMonotoneInSilence(t *testing.T) {
	d, fc := newClockedDetector()
	beat(d, fc, 3, 30, 5*time.Millisecond)
	prev := d.Phi(3)
	for i := 0; i < 10; i++ {
		fc.advance(50 * time.Millisecond)
		phi := d.Phi(3)
		if phi < prev {
			t.Fatalf("phi decreased during silence: %.3f -> %.3f", prev, phi)
		}
		prev = phi
	}
}

func TestPhiToleratesStragglers(t *testing.T) {
	d, fc := newClockedDetector()
	// An irregular peer: alternating fast and 5x-slow steps. Its own
	// distribution must buy it grace a fixed deadline would not give.
	for i := 0; i < 40; i++ {
		d.Heartbeat(2)
		if i%2 == 0 {
			fc.advance(2 * time.Millisecond)
		} else {
			fc.advance(10 * time.Millisecond)
		}
	}
	// Silence of 3 straggler steps: well within the habit of this peer
	// once MinSilence and the widened sigma are applied.
	fc.advance(30 * time.Millisecond)
	if d.Suspect(2) {
		t.Fatalf("straggler suspected after 30ms silence (phi %.2f, silence floor %v)",
			d.Phi(2), d.MinSilence)
	}
}

func TestSuspectNeedsSamplesAndSilenceFloor(t *testing.T) {
	d, fc := newClockedDetector()
	// Unknown peer: never suspected.
	if d.Suspect(7) {
		t.Fatal("unknown peer suspected")
	}
	// One beacon then a huge silence: below MinSamples, never suspected.
	d.Heartbeat(7)
	fc.advance(time.Hour)
	if d.Suspect(7) {
		t.Fatal("peer with no interval history suspected")
	}
	// Enough samples, but silence below the absolute floor: not suspected
	// even though phi is astronomically high for a 1ms cadence.
	beat(d, fc, 8, 20, time.Millisecond)
	fc.advance(d.MinSilence / 2)
	if d.Suspect(8) {
		t.Fatalf("peer suspected below the %v silence floor", d.MinSilence)
	}
}

// TestRecvSuspectsSilentPeer drives a real two-rank world in which rank
// 1 heartbeats and then goes silent without crashing — the case a fixed
// deadline can only catch by timing out. The receive on rank 0 must
// abort with ErrSuspect (and hence ErrRankDead) well before the 30s
// hard deadline.
func TestRecvSuspectsSilentPeer(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	det := NewPhiDetector()
	det.MinSilence = 50 * time.Millisecond
	det.MinSamples = 3
	w.SetDetector(det)
	w.SetRecvTimeout(30 * time.Second) // last resort only

	errc := make(chan error, 1)
	runErr := RunWorld(w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			_, err := c.RecvE(1, 9)
			errc <- err
			return nil
		case 1:
			for i := 0; i < 10; i++ {
				c.Heartbeat()
				time.Sleep(2 * time.Millisecond)
			}
			// Fall silent without crashing or exiting for a while; the
			// receiver must give up via the detector, not this return.
			time.Sleep(600 * time.Millisecond)
		}
		return nil
	})
	if runErr != nil {
		t.Fatalf("world failed: %v", runErr)
	}
	err = <-errc
	if err == nil {
		t.Fatal("recv from a silent peer returned no error")
	}
	if !errors.Is(err, ErrSuspect) {
		t.Fatalf("recv error %v does not wrap ErrSuspect", err)
	}
	if !errors.Is(err, ErrRankDead) {
		t.Fatalf("ErrSuspect must imply ErrRankDead; got %v", err)
	}
}

// TestRecvNoFalseSuspicionUnderLoad checks the flip side: a peer that
// keeps heartbeating, however slowly it produces the payload, is never
// suspected — the property that makes phi safe where a tight deadline
// is not.
func TestRecvNoFalseSuspicionUnderLoad(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	det := NewPhiDetector()
	det.MinSilence = 30 * time.Millisecond
	w.SetDetector(det)

	runErr := RunWorld(w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			m, err := c.RecvE(1, 9)
			if err != nil {
				return fmt.Errorf("receiver gave up on a live straggler: %w", err)
			}
			if len(m.Data) != 1 || m.Data[0] != 42 {
				return fmt.Errorf("wrong payload %v", m.Data)
			}
		case 1:
			// Straggle for ~200ms total but keep heartbeating.
			for i := 0; i < 40; i++ {
				c.Heartbeat()
				time.Sleep(5 * time.Millisecond)
			}
			c.Send(0, 9, Message{Data: []float64{42}})
		}
		return nil
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
}
