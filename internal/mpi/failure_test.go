package mpi

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// watchdog fails the test if fn has not returned within d — the
// acceptance criterion is that no receive blocks forever once the world
// is marked failed.
func watchdog(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("operation did not complete within the watchdog deadline (hang)")
	}
}

// TestRecvFromExitedRank is the satellite fix's acceptance test: a Recv
// posted against a rank that has already exited cleanly (without sending)
// must return ErrRankDead within the 5 s watchdog, not hang forever.
func TestRecvFromExitedRank(t *testing.T) {
	watchdog(t, 5*time.Second, func() {
		var recvErr error
		err := Run(2, func(c *Comm) error {
			if c.Rank() == 1 {
				return nil // exit without ever sending
			}
			_, recvErr = c.RecvE(1, 0)
			return nil
		})
		if err != nil {
			t.Errorf("run error: %v", err)
		}
		if !errors.Is(recvErr, ErrRankDead) {
			t.Errorf("recv from exited rank: got %v, want ErrRankDead", recvErr)
		}
	})
}

// TestRecvFromCrashedRank: a rank marked dead mid-run (Crash) surfaces
// ErrRankDead to its blocked peers, and the crash cause is retained as
// the world's failure cause.
func TestRecvFromCrashedRank(t *testing.T) {
	cause := errors.New("simulated node loss")
	watchdog(t, 5*time.Second, func() {
		w, err := NewWorld(2)
		if err != nil {
			t.Fatal(err)
		}
		runErr := RunWorld(w, func(c *Comm) error {
			if c.Rank() == 1 {
				c.Crash(cause)
				return cause
			}
			c.Recv(1, 0) // aborts via rankPanic
			return nil
		})
		if runErr == nil {
			t.Fatal("want a rank error")
		}
		if !errors.Is(runErr, ErrRankDead) && !errors.Is(runErr, cause) {
			t.Errorf("run error %v should carry the death", runErr)
		}
		if got := w.FailureCause(); !errors.Is(got, cause) {
			t.Errorf("failure cause = %v, want the crash cause", got)
		}
	})
}

// TestRecvDrainsBeforeDeath: messages a rank sent before dying stay
// consumable (the network delivered them before the crash); only after
// the queue drains does the receiver see ErrRankDead.
func TestRecvDrainsBeforeDeath(t *testing.T) {
	watchdog(t, 5*time.Second, func() {
		var got []float64
		var after error
		Run(2, func(c *Comm) error {
			if c.Rank() == 1 {
				c.Send(0, 7, Message{Data: []float64{1}})
				c.Send(0, 7, Message{Data: []float64{2}})
				return nil // now unreachable
			}
			for i := 0; i < 2; i++ {
				m, err := c.RecvE(1, 7)
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return nil
				}
				got = append(got, m.Data[0])
			}
			_, after = c.RecvE(1, 7)
			return nil
		})
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Errorf("drained %v, want [1 2] in order", got)
		}
		if !errors.Is(after, ErrRankDead) {
			t.Errorf("post-drain recv: got %v, want ErrRankDead", after)
		}
	})
}

// TestRecvTimeout: an explicit deadline turns a silent message loss into
// ErrTimeout.
func TestRecvTimeout(t *testing.T) {
	watchdog(t, 5*time.Second, func() {
		barrier := make(chan struct{})
		var terr error
		Run(2, func(c *Comm) error {
			if c.Rank() == 1 {
				<-barrier // stay alive (not dead) while rank 0 times out
				return nil
			}
			_, terr = c.RecvTimeout(1, 0, 30*time.Millisecond)
			close(barrier)
			return nil
		})
		if !errors.Is(terr, ErrTimeout) {
			t.Errorf("got %v, want ErrTimeout", terr)
		}
	})
}

// TestWorldRecvTimeout: SetRecvTimeout applies the deadline to plain
// Recv/RecvE without per-call opt-in.
func TestWorldRecvTimeout(t *testing.T) {
	watchdog(t, 5*time.Second, func() {
		w, err := NewWorld(2)
		if err != nil {
			t.Fatal(err)
		}
		w.SetRecvTimeout(30 * time.Millisecond)
		barrier := make(chan struct{})
		var terr error
		RunWorld(w, func(c *Comm) error {
			if c.Rank() == 1 {
				<-barrier
				return nil
			}
			_, terr = c.RecvE(1, 0)
			close(barrier)
			return nil
		})
		if !errors.Is(terr, ErrTimeout) {
			t.Errorf("got %v, want ErrTimeout", terr)
		}
	})
}

// TestAbortUnblocksEveryone: rank 0 tearing the world down (Abort) wakes
// every blocked receive and barrier with ErrWorldDown.
func TestAbortUnblocksEveryone(t *testing.T) {
	cause := errors.New("diverged")
	watchdog(t, 5*time.Second, func() {
		var downs atomic.Int64
		err := Run(4, func(c *Comm) error {
			if c.Rank() == 0 {
				time.Sleep(10 * time.Millisecond) // let peers block first
				c.Abort(cause)
				return cause
			}
			// Ranks 1..3 block on a message that never comes.
			_, err := c.RecvE((c.Rank()+1)%c.Size(), 3)
			if errors.Is(err, ErrWorldDown) {
				downs.Add(1)
			}
			return err
		})
		if err == nil {
			t.Fatal("want run failure after Abort")
		}
		if downs.Load() != 3 {
			t.Errorf("%d ranks saw ErrWorldDown, want 3", downs.Load())
		}
	})
}

// TestBarrierAbortsOnDeadRank: a barrier that can never complete (one
// member died) returns ErrRankDead instead of deadlocking.
func TestBarrierAbortsOnDeadRank(t *testing.T) {
	watchdog(t, 5*time.Second, func() {
		var berr error
		Run(3, func(c *Comm) error {
			switch c.Rank() {
			case 2:
				return errors.New("rank 2 dies before the barrier")
			case 0:
				berr = c.BarrierE()
			default:
				c.BarrierE()
			}
			return nil
		})
		if !errors.Is(berr, ErrRankDead) {
			t.Errorf("barrier with dead member: got %v, want ErrRankDead", berr)
		}
	})
}

// TestCollectiveAbortsOnDeadRank: blocking collectives (gather at root)
// abort via the rank-panic path when a contributor dies, and RunWorld
// converts that into the rank's error instead of crashing the process.
func TestCollectiveAbortsOnDeadRank(t *testing.T) {
	watchdog(t, 5*time.Second, func() {
		err := Run(3, func(c *Comm) error {
			if c.Rank() == 2 {
				return errors.New("lost before contributing")
			}
			c.Gather(0, Message{Data: []float64{float64(c.Rank())}})
			return nil
		})
		if err == nil {
			t.Fatal("want run failure")
		}
		if !errors.Is(err, ErrRankDead) {
			t.Errorf("got %v, want the gather to surface ErrRankDead", err)
		}
	})
}

// TestIrecvFailureSetsRequestError: a non-blocking receive against a
// dying peer completes with the error on the request (WaitE), leaking no
// goroutine and never hanging Wait.
func TestIrecvFailureSetsRequestError(t *testing.T) {
	watchdog(t, 5*time.Second, func() {
		var werr error
		Run(2, func(c *Comm) error {
			if c.Rank() == 1 {
				return nil
			}
			req := c.Irecv(1, 0)
			_, werr = req.WaitE()
			return nil
		})
		if !errors.Is(werr, ErrRankDead) {
			t.Errorf("Irecv against exited rank: got %v, want ErrRankDead", werr)
		}
	})
}

// dropHook drops the first n user messages it sees.
type dropHook struct {
	budget atomic.Int64
}

func (h *dropHook) OnSend(src, dst, tag int, data []float64, aux []byte) int {
	if h.budget.Add(-1) >= 0 {
		return 0
	}
	return 1
}

// dupHook duplicates every user message.
type dupHook struct{}

func (dupHook) OnSend(src, dst, tag int, data []float64, aux []byte) int { return 2 }

// TestFaultHookDrop: a hook-dropped message plus a receive deadline
// yields ErrTimeout — loss is detectable, not a hang.
func TestFaultHookDrop(t *testing.T) {
	watchdog(t, 5*time.Second, func() {
		w, err := NewWorld(2)
		if err != nil {
			t.Fatal(err)
		}
		h := &dropHook{}
		h.budget.Store(1)
		w.SetFaultHook(h)
		w.SetRecvTimeout(50 * time.Millisecond)
		barrier := make(chan struct{})
		var terr error
		RunWorld(w, func(c *Comm) error {
			if c.Rank() == 1 {
				c.Send(0, 9, Message{Data: []float64{42}}) // dropped
				<-barrier
				return nil
			}
			_, terr = c.RecvE(1, 9)
			close(barrier)
			return nil
		})
		if !errors.Is(terr, ErrTimeout) {
			t.Errorf("dropped message: got %v, want ErrTimeout", terr)
		}
	})
}

// TestFaultHookDuplicate: a duplicated message is received twice;
// collectives (negative tags) bypass the hook entirely.
func TestFaultHookDuplicate(t *testing.T) {
	watchdog(t, 5*time.Second, func() {
		w, err := NewWorld(2)
		if err != nil {
			t.Fatal(err)
		}
		w.SetFaultHook(dupHook{})
		var got []float64
		var sum float64
		RunWorld(w, func(c *Comm) error {
			if c.Rank() == 1 {
				c.Send(0, 5, Message{Data: []float64{7}})
				sum = c.AllreduceSum(1) // collective must still work
				return nil
			}
			for i := 0; i < 2; i++ {
				m := c.Recv(1, 5)
				got = append(got, m.Data[0])
			}
			c.AllreduceSum(1)
			return nil
		})
		if len(got) != 2 || got[0] != 7 || got[1] != 7 {
			t.Errorf("duplicate delivery got %v, want [7 7]", got)
		}
		if sum != 2 {
			t.Errorf("allreduce under dup hook = %v, want 2 (collectives are reliable)", sum)
		}
	})
}
