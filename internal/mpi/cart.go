package mpi

import "fmt"

// Cart2D is a 2-D Cartesian process grid over a communicator, matching the
// paper's xy domain decomposition: each rank owns a cuboid subdomain with
// the full z extent and communicates with up to 8 neighbours.
type Cart2D struct {
	Comm   *Comm
	PX, PY int
	// PeriodicX, PeriodicY control whether neighbour lookups wrap.
	PeriodicX, PeriodicY bool
}

// NewCart2D builds the process grid; px·py must equal the world size.
func NewCart2D(c *Comm, px, py int, periodicX, periodicY bool) (*Cart2D, error) {
	if px < 1 || py < 1 || px*py != c.Size() {
		return nil, fmt.Errorf("mpi: cart %d×%d does not match world size %d", px, py, c.Size())
	}
	return &Cart2D{Comm: c, PX: px, PY: py, PeriodicX: periodicX, PeriodicY: periodicY}, nil
}

// Coords returns this rank's grid coordinates (row-major: rank = y·PX+x).
func (g *Cart2D) Coords() (x, y int) {
	return g.Comm.Rank() % g.PX, g.Comm.Rank() / g.PX
}

// RankAt returns the rank at grid position (x, y), or −1 if the position
// is outside a non-periodic boundary.
func (g *Cart2D) RankAt(x, y int) int {
	if g.PeriodicX {
		x = ((x % g.PX) + g.PX) % g.PX
	} else if x < 0 || x >= g.PX {
		return -1
	}
	if g.PeriodicY {
		y = ((y % g.PY) + g.PY) % g.PY
	} else if y < 0 || y >= g.PY {
		return -1
	}
	return y*g.PX + x
}

// Neighbor returns the rank offset by (dx, dy) from this rank, or −1.
func (g *Cart2D) Neighbor(dx, dy int) int {
	x, y := g.Coords()
	return g.RankAt(x+dx, y+dy)
}

// Neighbors8 lists the up-to-8 surrounding ranks (paper §IV-C-1: "each MPI
// process needs to communicate with up to 8 neighbors"). Missing
// neighbours (non-periodic edges) are −1. Order: W, E, S, N, SW, SE, NW,
// NE in (dx,dy) terms.
func (g *Cart2D) Neighbors8() [8]int {
	return [8]int{
		g.Neighbor(-1, 0), g.Neighbor(1, 0),
		g.Neighbor(0, -1), g.Neighbor(0, 1),
		g.Neighbor(-1, -1), g.Neighbor(1, -1),
		g.Neighbor(-1, 1), g.Neighbor(1, 1),
	}
}

// FactorGrid chooses px, py with px·py = n minimising the halo surface for
// a global nx×ny domain (the perimeter-to-area heuristic used when the
// user does not specify a process grid).
func FactorGrid(n, nx, ny int) (px, py int) {
	bestCost := -1.0
	for p := 1; p <= n; p++ {
		if n%p != 0 {
			continue
		}
		q := n / p
		// Per-rank halo perimeter: 2·(nx/p + ny/q), ignoring constants.
		cost := float64(nx)/float64(p) + float64(ny)/float64(q)
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			px, py = p, q
		}
	}
	return px, py
}
