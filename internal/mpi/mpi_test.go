package mpi

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("want error for empty world")
	}
	w, err := NewWorld(4)
	if err != nil || w.Size() != 4 {
		t.Fatalf("NewWorld(4) = %v, %v", w, err)
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			c.Send(1, 7, Message{Data: []float64{1, 2, 3}, Aux: []byte{9}})
		case 1:
			m := c.Recv(0, 7)
			if len(m.Data) != 3 || m.Data[2] != 3 || m.Aux[0] != 9 {
				return fmt.Errorf("bad message %+v", m)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSeparation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, Message{Data: []float64{1}})
			c.Send(1, 2, Message{Data: []float64{2}})
			return nil
		}
		// Receive in reverse tag order: tags must not mix streams.
		m2 := c.Recv(0, 2)
		m1 := c.Recv(0, 1)
		if m1.Data[0] != 1 || m2.Data[0] != 2 {
			return fmt.Errorf("tags mixed: %v %v", m1.Data, m2.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	const n = 50
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 0, Message{Data: []float64{float64(i)}})
			}
			return nil
		}
		for i := 0; i < n; i++ {
			if m := c.Recv(0, 0); m.Data[0] != float64(i) {
				return fmt.Errorf("out of order: got %v want %d", m.Data[0], i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Post many sends before the peer receives (tests the
			// overflow goroutine path too).
			var reqs []*Request
			for i := 0; i < 100; i++ {
				reqs = append(reqs, c.Isend(1, 3, Message{Data: []float64{float64(i)}}))
			}
			WaitAll(reqs...)
			return nil
		}
		var reqs []*Request
		for i := 0; i < 100; i++ {
			reqs = append(reqs, c.Irecv(0, 3))
		}
		for i, r := range reqs {
			if m := r.Wait(); m.Data[0] != float64(i) {
				return fmt.Errorf("irecv %d got %v", i, m.Data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	var counter atomic.Int64
	const ranks = 8
	err := Run(ranks, func(c *Comm) error {
		for round := 0; round < 5; round++ {
			counter.Add(1)
			c.Barrier()
			// After the barrier, every rank must observe all
			// increments of this round.
			if got := counter.Load(); got < int64((round+1)*ranks) {
				return fmt.Errorf("round %d: counter %d < %d", round, got, (round+1)*ranks)
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	const ranks = 6
	err := Run(ranks, func(c *Comm) error {
		v := float64(c.Rank() + 1)
		if got := c.AllreduceSum(v); got != 21 {
			return fmt.Errorf("sum = %v, want 21", got)
		}
		if got := c.AllreduceMax(v); got != 6 {
			return fmt.Errorf("max = %v, want 6", got)
		}
		if got := c.AllreduceMin(v); got != 1 {
			return fmt.Errorf("min = %v, want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSingleRank(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if got := c.AllreduceSum(5); got != 5 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastGatherAllgather(t *testing.T) {
	const ranks = 5
	err := Run(ranks, func(c *Comm) error {
		var m Message
		if c.Rank() == 2 {
			m = Message{Data: []float64{42}}
		}
		got := c.Bcast(2, m)
		if got.Data[0] != 42 {
			return fmt.Errorf("bcast got %v", got.Data)
		}
		all := c.Gather(1, Message{Data: []float64{float64(c.Rank() * 10)}})
		if c.Rank() == 1 {
			for r := 0; r < ranks; r++ {
				if all[r].Data[0] != float64(r*10) {
					return fmt.Errorf("gather[%d] = %v", r, all[r].Data)
				}
			}
		} else if all != nil {
			return fmt.Errorf("non-root gather must return nil")
		}
		ag := c.Allgather(Message{Data: []float64{float64(c.Rank())}})
		for r := 0; r < ranks; r++ {
			if ag[r].Data[0] != float64(r) {
				return fmt.Errorf("allgather[%d] = %v", r, ag[r].Data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
}

func TestValidatePanics(t *testing.T) {
	_ = Run(1, func(c *Comm) error {
		for _, f := range []func(){
			func() { c.Send(5, 0, Message{}) },
			func() { c.Send(0, -3, Message{}) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						panic("expected panic did not happen")
					}
				}()
				f()
			}()
		}
		return nil
	})
}

func TestCart2D(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		g, err := NewCart2D(c, 3, 2, false, false)
		if err != nil {
			return err
		}
		x, y := g.Coords()
		if got := g.RankAt(x, y); got != c.Rank() {
			return fmt.Errorf("RankAt(Coords) = %d, want %d", got, c.Rank())
		}
		if c.Rank() == 0 {
			if g.Neighbor(-1, 0) != -1 {
				return fmt.Errorf("non-periodic west edge should be -1")
			}
			if g.Neighbor(1, 0) != 1 {
				return fmt.Errorf("east neighbour of 0 should be 1")
			}
			if g.Neighbor(0, 1) != 3 {
				return fmt.Errorf("north neighbour of 0 should be 3, got %d", g.Neighbor(0, 1))
			}
			if g.Neighbor(1, 1) != 4 {
				return fmt.Errorf("NE neighbour of 0 should be 4")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCart2DPeriodic(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		g, err := NewCart2D(c, 2, 2, true, true)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if got := g.Neighbor(-1, 0); got != 1 {
				return fmt.Errorf("periodic west of 0 = %d, want 1", got)
			}
			if got := g.Neighbor(0, -1); got != 2 {
				return fmt.Errorf("periodic south of 0 = %d, want 2", got)
			}
			n8 := g.Neighbors8()
			for i, r := range n8 {
				if r < 0 {
					return fmt.Errorf("periodic neighbour %d missing", i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCart2DValidation(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if _, err := NewCart2D(c, 3, 2, false, false); err == nil {
			return fmt.Errorf("want size-mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFactorGrid(t *testing.T) {
	cases := []struct {
		n, nx, ny      int
		wantPX, wantPY int
	}{
		{4, 100, 100, 2, 2},
		{8, 400, 100, 4, 2},
		{1, 10, 10, 1, 1},
		{6, 100, 100, 2, 3}, // or 3,2 — check cost instead
	}
	for _, tc := range cases {
		px, py := FactorGrid(tc.n, tc.nx, tc.ny)
		if px*py != tc.n {
			t.Errorf("FactorGrid(%d): %d×%d does not multiply to n", tc.n, px, py)
		}
		cost := float64(tc.nx)/float64(px) + float64(tc.ny)/float64(py)
		wantCost := float64(tc.nx)/float64(tc.wantPX) + float64(tc.ny)/float64(tc.wantPY)
		if cost > wantCost+1e-9 {
			t.Errorf("FactorGrid(%d,%d,%d) = %d×%d (cost %v), expected cost ≤ %v",
				tc.n, tc.nx, tc.ny, px, py, cost, wantCost)
		}
	}
}

func BenchmarkSendRecvLatency(b *testing.B) {
	w, _ := NewWorld(2)
	c0 := &Comm{world: w, rank: 0}
	c1 := &Comm{world: w, rank: 1}
	msg := Message{Data: make([]float64, 128)}
	done := make(chan struct{})
	go func() {
		for i := 0; i < b.N; i++ {
			c1.Recv(0, 0)
		}
		close(done)
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c0.Send(1, 0, msg)
	}
	<-done
}

func TestAlltoall(t *testing.T) {
	const ranks = 4
	err := Run(ranks, func(c *Comm) error {
		msgs := make([]Message, ranks)
		for r := range msgs {
			msgs[r] = Message{Data: []float64{float64(c.Rank()*10 + r)}}
		}
		got := c.Alltoall(msgs)
		for r := range got {
			want := float64(r*10 + c.Rank())
			if got[r].Data[0] != want {
				return fmt.Errorf("alltoall[%d] = %v, want %v", r, got[r].Data[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallValidatesLength(t *testing.T) {
	_ = Run(2, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		defer func() {
			if recover() == nil {
				panic("expected panic")
			}
		}()
		c.Alltoall(make([]Message, 1))
		return nil
	})
}
