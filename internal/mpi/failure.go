package mpi

// Failure model. At the paper's target scale (160 000 processes) rank
// loss and link faults are routine; the original runtime modelled a
// perfect machine, so any failure turned into a deadlocked goroutine.
// This file adds the failure half of the runtime: ranks can be marked
// dead (crash) or exited (clean return), the whole world can be torn
// down, receives can carry deadlines, and a FaultHook lets
// internal/fault drop, duplicate or bit-flip user messages in transit.
// Every blocking operation observes this state and returns a typed error
// instead of hanging.

import (
	"errors"
	"fmt"
	"time"

	"sunwaylb/internal/trace"
)

// Typed failure errors. Callers test with errors.Is.
var (
	// ErrRankDead reports that the peer rank crashed or exited and has
	// no more queued messages.
	ErrRankDead = errors.New("mpi: peer rank unreachable")
	// ErrTimeout reports that a receive exceeded its deadline.
	ErrTimeout = errors.New("mpi: receive timed out")
	// ErrWorldDown reports that the world has been torn down.
	ErrWorldDown = errors.New("mpi: world torn down")
	// ErrSuspect reports that the phi-accrual detector declared the peer
	// dead: its heartbeat silence crossed the suspicion threshold. It
	// wraps ErrRankDead, so existing errors.Is(err, ErrRankDead) checks
	// treat a suspected peer like a confirmed death.
	ErrSuspect = fmt.Errorf("peer suspected dead by phi-accrual detector: %w", ErrRankDead)
	// ErrRankPanic reports that a rank's body panicked with a genuine bug
	// (not a typed communication abort) inside a world running with
	// panic containment — the bulkhead mode of a multi-tenant service,
	// where one tenant's crash must become that rank's error instead of
	// taking down the whole process.
	ErrRankPanic = errors.New("mpi: rank body panicked")
)

// SetContainPanics selects how RunWorld treats a non-communication panic
// in a rank body. Off (the default), such a panic is a genuine bug and
// crashes the process loudly. On, it is recovered into the rank's error
// return wrapping ErrRankPanic, so a supervisor (and the service layer
// above it) can fail just that run. Install before RunWorld starts ranks.
func (w *World) SetContainPanics(on bool) {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	w.containPanics = on
}

func (w *World) panicsContained() bool {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.containPanics
}

// rankPanic aborts a rank out of deeply nested exchange code; RunWorld
// recovers it into the rank's error return. This mirrors how a real MPI
// implementation aborts a process on a fatal communication error.
type rankPanic struct{ err error }

// FaultHook intercepts user-tag messages on their way into the
// transport. OnSend returns how many copies to deliver (0 = drop,
// 1 = normal, 2 = duplicate) and may mutate data/aux in place to model
// silent data corruption. Implementations must be safe for concurrent
// use. internal/fault.Injector implements this structurally.
type FaultHook interface {
	OnSend(src, dst, tag int, data []float64, aux []byte) int
}

// SetFaultHook installs a message-fault interceptor (nil removes it).
// Install before RunWorld starts ranks.
func (w *World) SetFaultHook(h FaultHook) {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	w.hook = h
}

func (w *World) faultHook() FaultHook {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.hook
}

// SetRecvTimeout sets the default deadline applied to every receive
// (0 = none). With faults that drop messages a deadline is what turns a
// silent loss into a detectable ErrTimeout.
func (w *World) SetRecvTimeout(d time.Duration) {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	w.recvTimeout = d
}

func (w *World) timeout() time.Duration {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.recvTimeout
}

// MarkDead records that a rank crashed. Receivers blocked on it wake
// with ErrRankDead (after draining messages it sent before dying), and
// barriers in progress abort. The first non-nil cause is retained as the
// world's failure cause.
func (w *World) MarkDead(rank int, cause error) {
	w.fmu.Lock()
	first := false
	if _, seen := w.dead[rank]; !seen {
		w.dead[rank] = cause
		first = true
	}
	if w.cause == nil && cause != nil {
		w.cause = cause
	}
	w.bumpLocked()
	w.fmu.Unlock()
	if first {
		w.traceDead(rank) // after fmu release: Tracer() re-takes fmu
	}
	w.wakeBarrier()
}

// traceDead records a dead-rank instant on the rank's own timeline.
// Must be called without fmu held.
func (w *World) traceDead(rank int) {
	if t := w.Tracer(); t != nil {
		tr := t.ForRank(rank)
		tr.Instant(trace.Wall, trace.TrackMPI, "rank-dead", tr.Now())
	}
}

// markExit records a rank leaving the world: dead when err != nil,
// cleanly exited otherwise. Either way the rank is unreachable for
// future receives once its queue drains.
func (w *World) markExit(rank int, err error) {
	w.fmu.Lock()
	first := false
	if _, seen := w.dead[rank]; !seen {
		w.dead[rank] = err
		first = true
		if w.cause == nil && err != nil {
			w.cause = err
		}
		w.bumpLocked()
	}
	w.fmu.Unlock()
	if first && err != nil {
		w.traceDead(rank)
	}
	w.wakeBarrier()
}

// Fail tears down the whole world: every blocked operation on every rank
// aborts with ErrWorldDown. Used by the supervisor when rank 0 detects a
// globally unusable state (e.g. a diverged health check).
func (w *World) Fail(cause error) {
	w.fmu.Lock()
	if !w.down {
		w.down = true
		if w.cause == nil && cause != nil {
			w.cause = cause
		}
		w.bumpLocked()
	}
	w.fmu.Unlock()
	w.wakeBarrier()
}

// FailureCause returns the first recorded failure cause (nil while the
// world is healthy). The supervisor uses it to classify a failed run
// even when the first rank-ordered error is a secondary ErrRankDead.
func (w *World) FailureCause() error {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.cause
}

// DeadRanks returns a copy of the per-rank death ledger: every rank
// that crashed or exited, with its cause (nil = clean exit). The
// supervisor uses it to separate root failures (a rank that crashed on
// its own error) from collateral ones (ranks that died waiting on it),
// which is what decides hot-swap versus disk rollback.
func (w *World) DeadRanks() map[int]error {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	out := make(map[int]error, len(w.dead))
	for r, e := range w.dead {
		out[r] = e
	}
	return out
}

// bumpLocked signals a failure-state change to every watcher. Callers
// hold fmu. Each channel returned by failureSignal is closed by the
// first state change after it was obtained.
func (w *World) bumpLocked() {
	close(w.notify)
	w.notify = make(chan struct{})
}

func (w *World) failureSignal() <-chan struct{} {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.notify
}

// wakeBarrier nudges barrier waiters to re-check reachability. The
// barrier mutex is held across the broadcast so a waiter between its
// check and cond.Wait cannot miss the wakeup.
func (w *World) wakeBarrier() {
	w.barrier.Lock()
	w.barrier.cond.Broadcast()
	w.barrier.Unlock()
}

// peerErr reports why a source rank is unreachable, or nil.
func (w *World) peerErr(src int) error {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	if w.down {
		if w.cause != nil {
			return fmt.Errorf("%w (cause: %v)", ErrWorldDown, w.cause)
		}
		return ErrWorldDown
	}
	if cause, seen := w.dead[src]; seen {
		if cause != nil {
			return fmt.Errorf("rank %d died (%v): %w", src, cause, ErrRankDead)
		}
		return fmt.Errorf("rank %d exited: %w", src, ErrRankDead)
	}
	return nil
}

// unreachableErr reports the first reason any rank is unreachable (used
// by barriers, which need every rank).
func (w *World) unreachableErr() error {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	if w.down {
		if w.cause != nil {
			return fmt.Errorf("%w (cause: %v)", ErrWorldDown, w.cause)
		}
		return ErrWorldDown
	}
	for r := 0; r < w.size; r++ {
		if cause, seen := w.dead[r]; seen {
			if cause != nil {
				return fmt.Errorf("rank %d died (%v): %w", r, cause, ErrRankDead)
			}
			return fmt.Errorf("rank %d exited: %w", r, ErrRankDead)
		}
	}
	return nil
}

// Abort tears down the whole world from a rank (e.g. rank 0 detecting a
// globally diverged state).
func (c *Comm) Abort(err error) { c.world.Fail(err) }

// Crash marks this rank dead, simulating sudden rank loss: peers see
// ErrRankDead once the messages it already sent are drained.
func (c *Comm) Crash(err error) { c.world.MarkDead(c.rank, err) }

// recvAny is the failure-aware receive all public receives build on.
// It delivers queued messages first (a dead peer's in-flight messages
// remain consumable, matching a network that delivered before the
// crash), then errors once the peer is unreachable, the world is down,
// or the deadline passes.
func (c *Comm) recvAny(src, tag int, timeout time.Duration) (Message, error) {
	mb := c.world.box(src, c.rank, tag)
	return c.recvOn(mb, src, tag, mb.get(), timeout)
}

// recvOn waits on an already-registered waiter channel (registration
// happens at posting time so concurrent Irecvs match in posting order).
func (c *Comm) recvOn(mb *mailbox, src, tag int, ch chan Message, timeout time.Duration) (Message, error) {
	w := c.world
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	// With a phi-accrual detector installed, a blocked receive polls the
	// source's suspicion level so a silently-vanished peer is detected
	// adaptively instead of waiting out the full hard deadline.
	var suspectTick <-chan time.Time
	det := w.Detector()
	if det != nil && src != c.rank {
		tk := time.NewTicker(det.CheckEvery)
		defer tk.Stop()
		suspectTick = tk.C
	}
	for {
		// Fast path: a message is already available.
		select {
		case m := <-ch:
			return m, nil
		default:
		}
		// Order matters: take the failure signal before checking the
		// peer, so a state change after the check closes the channel
		// we are about to select on.
		sig := w.failureSignal()
		if err := w.peerErr(src); err != nil {
			mb.cancel(ch)
			// A message may have raced in between the fast path and
			// cancel; drain queued messages before reporting death.
			if m, ok := mb.tryGet(); ok {
				return m, nil
			}
			return Message{}, err
		}
		select {
		case m := <-ch:
			return m, nil
		case <-sig:
			// Failure state changed; loop and re-evaluate.
		case <-suspectTick:
			if !det.Suspect(src) {
				continue
			}
			mb.cancel(ch)
			if m, ok := mb.tryGet(); ok {
				return m, nil
			}
			return Message{}, fmt.Errorf("rank %d recv(src=%d, tag=%d): silent %v, phi %.1f ≥ %.1f: %w",
				c.rank, src, tag, det.Silence(src).Round(time.Millisecond),
				det.Phi(src), det.Threshold, ErrSuspect)
		case <-deadline:
			mb.cancel(ch)
			if m, ok := mb.tryGet(); ok {
				return m, nil
			}
			return Message{}, fmt.Errorf("rank %d recv(src=%d, tag=%d) exceeded %v: %w",
				c.rank, src, tag, timeout, ErrTimeout)
		}
	}
}
