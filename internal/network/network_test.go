package network

import (
	"testing"
	"testing/quick"
)

func TestSameSupernode(t *testing.T) {
	n := TaihuLightNet
	if !n.SameSupernode(0, 1023) {
		t.Error("ranks 0 and 1023 share the first supernode (256 procs × 4 CGs)")
	}
	if n.SameSupernode(1023, 1024) {
		t.Error("ranks 1023 and 1024 are in different supernodes")
	}
	degenerate := Topology{}
	if !degenerate.SameSupernode(0, 1e6) {
		t.Error("zero-sized supernode must mean a flat network")
	}
}

func TestMessageTimeOrdering(t *testing.T) {
	n := TaihuLightNet
	intra := n.MessageTime(1<<20, true)
	inter := n.MessageTime(1<<20, false)
	if intra >= inter {
		t.Errorf("intra-supernode (%v) must beat inter-supernode (%v)", intra, inter)
	}
	if n.MessageTime(0, true) < n.SoftwareOverhead+n.IntraLatency {
		t.Error("empty message still costs latency + overhead")
	}
	if n.MessageTime(-5, true) != n.MessageTime(0, true) {
		t.Error("negative sizes clamp to zero")
	}
}

func TestMessageTimeMonotonic(t *testing.T) {
	n := NewSunwayNet
	f := func(a, b uint32, sn bool) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return n.MessageTime(x, sn) <= n.MessageTime(y, sn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHaloExchangeTime(t *testing.T) {
	n := TaihuLightNet
	if n.HaloExchangeTime(nil) != 0 {
		t.Error("no messages, no cost")
	}
	// Eight neighbours, one big face dominating.
	msgs := []Message{
		{Bytes: 10 << 20, SameSupernode: true},
		{Bytes: 10 << 20, SameSupernode: true},
		{Bytes: 1 << 10, SameSupernode: true},
		{Bytes: 1 << 10, SameSupernode: true},
		{Bytes: 64, SameSupernode: true}, {Bytes: 64, SameSupernode: true},
		{Bytes: 64, SameSupernode: true}, {Bytes: 64, SameSupernode: true},
	}
	got := n.HaloExchangeTime(msgs)
	wire := n.IntraLatency + float64(10<<20)/n.IntraBandwidth
	want := 8*n.SoftwareOverhead + wire
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("halo time = %v, want %v", got, want)
	}
	// Moving the big faces off-supernode must cost more.
	msgs[0].SameSupernode = false
	msgs[1].SameSupernode = false
	if n.HaloExchangeTime(msgs) <= got {
		t.Error("inter-supernode faces must increase the halo time")
	}
}

func TestAllreduceTime(t *testing.T) {
	n := TaihuLightNet
	if n.AllreduceTime(1) != 0 {
		t.Error("single rank allreduce is free")
	}
	t4, t160k := n.AllreduceTime(4), n.AllreduceTime(160000)
	if t4 <= 0 || t160k <= t4 {
		t.Errorf("allreduce must grow with ranks: %v vs %v", t4, t160k)
	}
	// Logarithmic: 160000 ranks is ~18 doublings, so under 40 hops.
	if t160k > 40*n.MessageTime(8, false) {
		t.Errorf("allreduce of 160000 ranks too expensive: %v", t160k)
	}
}

func TestTopologyString(t *testing.T) {
	for _, topo := range []Topology{TaihuLightNet, NewSunwayNet, GPUClusterNet} {
		if topo.String() == "" {
			t.Error("empty String()")
		}
	}
}
