package network

import (
	"math"
	"testing"
)

func TestWorstStraggler(t *testing.T) {
	if w := WorstStraggler(nil); w != 1 {
		t.Errorf("WorstStraggler(nil) = %v, want 1", w)
	}
	if w := WorstStraggler([]float64{1, 1, 1}); w != 1 {
		t.Errorf("all-fast = %v, want 1", w)
	}
	if w := WorstStraggler([]float64{1, 4, 2.5, 1}); w != 4 {
		t.Errorf("worst = %v, want 4", w)
	}
}

// TestStepTimeWithStragglers: one slow rank paces the whole bulk-
// synchronous step — the inflated time is worst×compute plus the
// unchanged halo and allreduce terms.
func TestStepTimeWithStragglers(t *testing.T) {
	topo := TaihuLightNet
	const compute, halo = 2e-3, 3e-4
	mults := []float64{1, 1, 4, 1}

	base := topo.StepTimeWithStragglers(compute, halo, []float64{1, 1, 1, 1})
	slow := topo.StepTimeWithStragglers(compute, halo, mults)

	wantBase := compute + halo + topo.AllreduceTime(4)
	if math.Abs(base-wantBase) > 1e-15 {
		t.Errorf("fault-free step = %v, want %v", base, wantBase)
	}
	if got, want := slow-base, 3*compute; math.Abs(got-want) > 1e-12 {
		t.Errorf("straggler penalty = %v, want 3×compute = %v", got, want)
	}
}

// TestStragglerSlowdown: the slowdown ratio is >1 with a straggler,
// exactly 1 without, and approaches the straggler factor as compute
// dominates the step.
func TestStragglerSlowdown(t *testing.T) {
	topo := NewSunwayNet
	if s := topo.StragglerSlowdown(1e-3, 1e-4, []float64{1, 1}); s != 1 {
		t.Errorf("fault-free slowdown = %v, want 1", s)
	}
	s := topo.StragglerSlowdown(1e-3, 1e-4, []float64{1, 3})
	if s <= 1 || s >= 3 {
		t.Errorf("slowdown = %v, want in (1, 3)", s)
	}
	// Compute-dominated limit: the ratio tends to the straggler factor.
	sc := topo.StragglerSlowdown(10, 1e-6, []float64{1, 3})
	if math.Abs(sc-3) > 0.01 {
		t.Errorf("compute-dominated slowdown = %v, want ≈ 3", sc)
	}
	// Degenerate base never divides by zero.
	if s := (Topology{}).StragglerSlowdown(0, 0, nil); s != 1 {
		t.Errorf("degenerate slowdown = %v, want 1", s)
	}
}
