package network

// Straggler modelling. LBM steps are bulk-synchronous: every rank must
// finish its halo exchange before any rank can proceed, so one slow rank
// ("straggler" — a thermally throttled processor, a node sharing its
// supernode with a noisy neighbour) sets the pace of the whole machine.
// fault.Injector.StragglerMultipliers supplies per-rank slow-down factors;
// these helpers fold them into the modelled step time used by
// internal/scaling-style extrapolation.

// WorstStraggler returns the largest multiplier (≥ 1) in mults; an empty
// or all-fast slice yields 1.
func WorstStraggler(mults []float64) float64 {
	worst := 1.0
	for _, m := range mults {
		if m > worst {
			worst = m
		}
	}
	return worst
}

// StepTimeWithStragglers returns the modelled wall-clock time of one
// bulk-synchronous step: the slowest rank's inflated compute time, plus
// the halo-exchange time, plus the end-of-step allreduce that makes the
// straggler globally visible. compute and halo are the fault-free
// per-rank times; mults holds one multiplier per rank (1 = nominal).
func (t Topology) StepTimeWithStragglers(compute, halo float64, mults []float64) float64 {
	return WorstStraggler(mults)*compute + halo + t.AllreduceTime(len(mults))
}

// StragglerSlowdown returns the modelled step-time ratio of a run with
// stragglers to the fault-free run — the number a chaos experiment
// compares against its measured throughput loss.
func (t Topology) StragglerSlowdown(compute, halo float64, mults []float64) float64 {
	base := compute + halo + t.AllreduceTime(len(mults))
	if base <= 0 {
		return 1
	}
	return t.StepTimeWithStragglers(compute, halo, mults) / base
}
