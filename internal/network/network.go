// Package network models the interconnects of the evaluated systems: the
// Sunway supernode (256 processors fully connected through a customised
// switch board) with a fat tree above it (§III-A, Fig. 2(b)), and the
// InfiniBand-style network of the GPU cluster. The scaling experiments use
// it to cost halo-exchange messages at rank counts far beyond what can be
// run functionally.
package network

import "fmt"

// Topology holds the latency/bandwidth constants of one interconnect.
type Topology struct {
	Name string
	// RanksPerSupernode is the number of MPI ranks sharing the
	// all-to-all switch board (256 processors × CGs per processor on
	// the Sunway systems; GPUs per node on the GPU cluster).
	RanksPerSupernode int
	// Intra-supernode (switch-board) link parameters.
	IntraLatency   float64
	IntraBandwidth float64
	// Inter-supernode (fat-tree) link parameters.
	InterLatency   float64
	InterBandwidth float64
	// SoftwareOverhead is the per-message injection cost (MPI stack).
	SoftwareOverhead float64
}

// TaihuLightNet: a supernode is 256 SW26010 processors = 1024 CGs (ranks);
// the fat tree above uses the proprietary high-speed interconnect.
var TaihuLightNet = Topology{
	Name:              "TaihuLight supernode + fat tree",
	RanksPerSupernode: 256 * 4,
	IntraLatency:      1e-6,
	IntraBandwidth:    6e9,
	InterLatency:      2.5e-6,
	InterBandwidth:    4e9,
	SoftwareOverhead:  1.5e-6,
}

// NewSunwayNet: 256 SW26010-Pro processors = 1536 CGs per supernode.
var NewSunwayNet = Topology{
	Name:              "New Sunway supernode + fat tree",
	RanksPerSupernode: 256 * 6,
	IntraLatency:      0.9e-6,
	IntraBandwidth:    8e9,
	InterLatency:      2.2e-6,
	InterBandwidth:    6e9,
	SoftwareOverhead:  1.2e-6,
}

// GPUClusterNet: 8 GPUs per node; inter-node 100 Gb/s InfiniBand.
var GPUClusterNet = Topology{
	Name:              "GPU cluster (NVLink/PCIe intra, IB inter)",
	RanksPerSupernode: 8,
	IntraLatency:      5e-6,
	IntraBandwidth:    24e9,
	InterLatency:      8e-6,
	InterBandwidth:    12.5e9,
	SoftwareOverhead:  3e-6,
}

// SameSupernode reports whether two ranks share a supernode under the
// default block placement (consecutive ranks fill supernodes in order).
func (t Topology) SameSupernode(a, b int) bool {
	if t.RanksPerSupernode <= 0 {
		return true
	}
	return a/t.RanksPerSupernode == b/t.RanksPerSupernode
}

// MessageTime returns the transfer time of one point-to-point message.
func (t Topology) MessageTime(bytes int64, sameSupernode bool) float64 {
	if bytes < 0 {
		bytes = 0
	}
	lat, bw := t.IntraLatency, t.IntraBandwidth
	if !sameSupernode {
		lat, bw = t.InterLatency, t.InterBandwidth
	}
	return t.SoftwareOverhead + lat + float64(bytes)/bw
}

// Message describes one halo-exchange message for costing.
type Message struct {
	Bytes         int64
	SameSupernode bool
}

// HaloExchangeTime costs a non-blocking halo exchange: messages to
// distinct neighbours proceed concurrently over independent links, so the
// wire time is the maximum over messages, but each message's injection
// (software overhead) serialises on the host core.
func (t Topology) HaloExchangeTime(msgs []Message) float64 {
	if len(msgs) == 0 {
		return 0
	}
	maxWire := 0.0
	inject := 0.0
	for _, m := range msgs {
		lat, bw := t.IntraLatency, t.IntraBandwidth
		if !m.SameSupernode {
			lat, bw = t.InterLatency, t.InterBandwidth
		}
		wire := lat + float64(m.Bytes)/bw
		if wire > maxWire {
			maxWire = wire
		}
		inject += t.SoftwareOverhead
	}
	return inject + maxWire
}

// AllreduceTime costs a scalar allreduce over n ranks as a binary
// tree of small messages (used once per step for residuals/diagnostics;
// negligible but modelled for completeness).
func (t Topology) AllreduceTime(n int) float64 {
	if n <= 1 {
		return 0
	}
	depth := 0
	for v := n - 1; v > 0; v >>= 1 {
		depth++
	}
	// Up and down the tree; conservatively inter-supernode hops.
	return 2 * float64(depth) * t.MessageTime(8, false)
}

// String implements fmt.Stringer.
func (t Topology) String() string {
	return fmt.Sprintf("%s (%d ranks/supernode)", t.Name, t.RanksPerSupernode)
}
