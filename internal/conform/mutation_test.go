package conform

import (
	"testing"
)

// TestShadowControl: the clean shadow kernel must itself conform — the
// control arm without which "mutant caught" proves nothing.
func TestShadowControl(t *testing.T) {
	for _, s := range []string{
		"v1;seed=61;grid=8x8x8;tau=0.7;steps=4;bc=periodic;obst=2",
		"v1;seed=62;grid=2x2x2;tau=0.8;steps=1;bc=periodic",
		"v1;seed=63;grid=9x10x8;tau=1.2;steps=5;bc=periodic",
	} {
		c := mustParse(t, s)
		if err := ShadowControl(c.Normalized()); err != nil {
			t.Errorf("clean shadow kernel fails on %s: %v", s, err)
		}
	}
}

// TestSelfTestDetectsAllMutations is the acceptance criterion: every
// injected numerical bug is caught by at least one oracle and shrinks
// to a standalone replay.
func TestSelfTestDetectsAllMutations(t *testing.T) {
	dets, err := SelfTest(1, 10, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Mutations()); len(dets) != want {
		t.Fatalf("detected %d mutations, want %d", len(dets), want)
	}
	for _, d := range dets {
		if d.Replay == "" || d.Err == nil {
			t.Errorf("mutation %s: incomplete detection %+v", d.Mutation.Name, d)
		}
		// The replay string reproduces the violation standalone.
		rc, err := ParseCase(d.Replay)
		if err != nil {
			t.Errorf("mutation %s: replay %q does not parse: %v", d.Mutation.Name, d.Replay, err)
			continue
		}
		if rerr := RunOracle("mutant/"+d.Mutation.Name, rc); rerr == nil || IsSkip(rerr) {
			t.Errorf("mutation %s: replay %q does not reproduce (got %v)", d.Mutation.Name, d.Replay, rerr)
		}
	}
}

// TestFlipRelaxInvisibleToConservation documents the key power fact:
// the flipped relaxation sign conserves mass bit-for-bit (BGK collision
// conserves ρ for either sign), so only the differential oracle can see
// it. If this ever starts failing the mutation catalogue should be
// re-examined — it would mean the shadow kernel's bug is leaking into a
// conserved quantity.
func TestFlipRelaxInvisibleToConservation(t *testing.T) {
	c := mustParse(t, "v1;seed=71;grid=8x8x8;tau=0.7;steps=3;bc=periodic").Normalized()
	var flip Mutation
	for _, m := range Mutations() {
		if m.Name == "flip-relax-sign" {
			flip = m
		}
	}
	if flip.Step == nil {
		t.Fatal("flip-relax-sign mutation missing")
	}
	_, m0, m1, err := runShadow(c, flip.Step)
	if err != nil {
		t.Fatal(err)
	}
	if d := m1 - m0; d > 1e-10 || d < -1e-10 {
		t.Fatalf("flip-relax unexpectedly violates mass: %.17g -> %.17g", m0, m1)
	}
	// ...while the differential oracle does catch it.
	if err := checkShadow(c, flip.Step); err == nil {
		t.Fatal("differential oracle missed the flipped relaxation sign")
	}
}

// TestMutantOraclesExcludedFromSuite: RunSuite must never include the
// intentionally-broken shadow kernels.
func TestMutantOraclesExcludedFromSuite(t *testing.T) {
	for _, n := range OracleNames() {
		if len(n) >= 7 && n[:7] == "mutant/" {
			t.Fatalf("suite oracle list contains mutant %s", n)
		}
	}
	// But the replay universe must know them.
	c := mustParse(t, "v1;seed=1;grid=2x2x2;tau=0.8;steps=1")
	if err := RunOracle("mutant/drop-population", c); err == nil {
		t.Fatal("mutant/drop-population should fail on any non-trivial case")
	}
}

func TestShrinkPredicateMinimises(t *testing.T) {
	c := mustParse(t, "v1;seed=9;grid=12x11x10;tau=0.62;steps=6;bc=lid;obst=2;smag=0.2")
	min := Shrink(c, func(cand *Case) bool { return cand.NX >= 4 && cand.Steps >= 2 })
	if min.NX != 4 {
		t.Errorf("NX not minimised: %d (want 4)", min.NX)
	}
	if min.Steps != 2 {
		t.Errorf("Steps not minimised: %d (want 2)", min.Steps)
	}
	if min.NY != 2 || min.NZ != 2 || min.Obst != 0 || min.Smagorinsky != 0 || min.BC != BCPeriodic {
		t.Errorf("irrelevant structure survived shrinking: %s", min)
	}
	// Shrink of a non-failing case returns the case unchanged.
	same := Shrink(c, func(cand *Case) bool { return *cand == *c })
	if *same != *c {
		t.Errorf("shrink moved off the only failing point: %s", same)
	}
}
