package conform

import (
	"fmt"
	"math"

	"sunwaylb/internal/core"
)

// Tolerance bounds the allowed disagreement between two macroscopic
// fields. The zero value demands bit-identical floats — the default for
// the cross-implementation matrix, because every backend evaluates the
// same per-cell update in the same order (PAPER §IV-C: the optimization
// stages restructure data movement, not arithmetic).
type Tolerance struct {
	// MaxULP admits values within this many representable doubles of
	// each other (0 = bit-identical). Used where an implementation
	// legitimately reorders float operations.
	MaxULP int
	// AbsTol admits absolute deviation up to this bound (checked after
	// ULP); metamorphic transforms that permute population summation
	// order need ~1e-12 here.
	AbsTol float64
}

// Exact is the bit-identical tolerance of the differential matrix.
var Exact = Tolerance{}

// Metamorphic is the documented bound for symmetry transforms, which
// permute the FP summation order of moments and equilibria. The values
// themselves are O(1e-2), so 1e-12 is ~1e5 ULP of headroom above the
// worst case observed while still catching any physics-level bug.
var Metamorphic = Tolerance{AbsTol: 1e-12}

// ulpDiff returns the number of representable float64 steps between a
// and b (math.MaxInt64 for NaN or infinite separation).
func ulpDiff(a, b float64) int64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxInt64
	}
	if a == b {
		return 0
	}
	ia := int64(math.Float64bits(a))
	if ia < 0 {
		ia = math.MinInt64 - ia
	}
	ib := int64(math.Float64bits(b))
	if ib < 0 {
		ib = math.MinInt64 - ib
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	if d < 0 { // overflowed (opposite extremes)
		return math.MaxInt64
	}
	return d
}

// within reports whether a and b agree under the tolerance.
func (t Tolerance) within(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	if ulpDiff(a, b) <= int64(t.MaxULP) {
		return true
	}
	return math.Abs(a-b) <= t.AbsTol
}

// Mismatch pinpoints the worst disagreement between two fields.
type Mismatch struct {
	// Field is "rho", "ux", "uy" or "uz".
	Field   string
	X, Y, Z int
	// Want is the reference value, Got the backend's.
	Want, Got float64
	// ULP is the representable-double distance (capped at MaxInt64).
	ULP int64
	// Count is the total number of out-of-tolerance samples.
	Count int
}

// Error renders the mismatch for reports.
func (m *Mismatch) Error() string {
	return fmt.Sprintf("%s[%d,%d,%d]: got %.17g want %.17g (Δ=%.3g, %d ulp; %d cells out of tolerance)",
		m.Field, m.X, m.Y, m.Z, m.Got, m.Want, m.Got-m.Want, m.ULP, m.Count)
}

// Compare checks got against the reference field under the tolerance and
// returns nil when they agree. Shape mismatch or any out-of-tolerance
// cell yields a descriptive error; the worst cell (largest absolute
// deviation) is reported.
func Compare(want, got *core.MacroField, tol Tolerance) error {
	if got == nil {
		return fmt.Errorf("conform: backend returned nil field")
	}
	if want.NX != got.NX || want.NY != got.NY || want.NZ != got.NZ {
		return fmt.Errorf("conform: field shape %dx%dx%d != reference %dx%dx%d",
			got.NX, got.NY, got.NZ, want.NX, want.NY, want.NZ)
	}
	var worst *Mismatch
	worstDev := -1.0
	count := 0
	check := func(name string, w, g []float64) {
		for y := 0; y < want.NY; y++ {
			for x := 0; x < want.NX; x++ {
				for z := 0; z < want.NZ; z++ {
					i := want.Idx(x, y, z)
					if tol.within(w[i], g[i]) {
						continue
					}
					count++
					dev := math.Abs(w[i] - g[i])
					if math.IsNaN(g[i]) || math.IsNaN(w[i]) {
						dev = math.Inf(1)
					}
					if dev > worstDev {
						worstDev = dev
						worst = &Mismatch{Field: name, X: x, Y: y, Z: z,
							Want: w[i], Got: g[i], ULP: ulpDiff(w[i], g[i])}
					}
				}
			}
		}
	}
	check("rho", want.Rho, got.Rho)
	check("ux", want.Ux, got.Ux)
	check("uy", want.Uy, got.Uy)
	check("uz", want.Uz, got.Uz)
	if worst == nil {
		return nil
	}
	worst.Count = count
	return worst
}
