package conform

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"sunwaylb/internal/core"
	"sunwaylb/internal/decomp"
	"sunwaylb/internal/fault"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/psolve"
	"sunwaylb/internal/resil"
	"sunwaylb/internal/swio"
)

// errSkip marks an oracle as not applicable to a case (e.g. momentum
// conservation on a driven cavity). Skips are counted, never failures,
// and a shrink candidate whose oracle skips is treated as non-failing.
var errSkip = errors.New("conform: not applicable")

// skipf builds a skip with context.
func skipf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, errSkip)...)
}

// IsSkip reports whether an oracle outcome means "not applicable".
func IsSkip(err error) bool { return errors.Is(err, errSkip) }

// Ctx carries one case through the oracle list, memoizing the serial
// reference so the differential matrix computes it once.
type Ctx struct {
	Case *Case

	refDone bool
	ref     *core.MacroField
	refErr  error
}

// Reference returns the memoized serial fused-kernel solution.
func (x *Ctx) Reference() (*core.MacroField, error) {
	if !x.refDone {
		x.ref, x.refErr = x.Case.Reference()
		x.refDone = true
	}
	return x.ref, x.refErr
}

// Oracle is one executable correctness statement. Check returns nil on
// pass, errSkip (via skipf) when the case is out of scope, and a
// descriptive violation otherwise.
type Oracle struct {
	Name  string
	Check func(x *Ctx) error
}

// Oracles returns the complete conformance suite: the differential
// backend matrix against the serial reference, then the metamorphic and
// physics properties.
func Oracles() []Oracle {
	var os []Oracle
	for _, b := range Backends() {
		b := b
		os = append(os, Oracle{Name: b.Name, Check: func(x *Ctx) error {
			want, err := x.Reference()
			if err != nil {
				return fmt.Errorf("reference: %w", err)
			}
			got, err := b.Run(x.Case)
			if err != nil {
				return skipf("backend %s: %v", b.Name, err)
			}
			return Compare(want, got, Exact)
		}})
	}
	os = append(os,
		Oracle{Name: "prop/mass", Check: checkMass},
		Oracle{Name: "prop/momentum", Check: checkMomentum},
		Oracle{Name: "prop/rest", Check: checkRest},
		Oracle{Name: "prop/translate", Check: checkTranslate},
		Oracle{Name: "prop/reflect", Check: checkReflect},
		Oracle{Name: "prop/rotate", Check: checkRotate},
		Oracle{Name: "prop/checkpoint", Check: checkCheckpoint},
		Oracle{Name: "prop/aa-parity", Check: checkAAParity},
		Oracle{Name: "prop/faultplan", Check: checkFaultPlan},
		Oracle{Name: "prop/recover-hotswap", Check: checkRecoverHotswap},
	)
	return os
}

// OracleNames lists the suite in order.
func OracleNames() []string {
	os := Oracles()
	names := make([]string, len(os))
	for i, o := range os {
		names[i] = o.Name
	}
	return names
}

// ---------------------------------------------------------------------
// Conservation properties.

// checkMass asserts global mass conservation on periodic domains: LBGK
// collision conserves density exactly, bounce-back walls return every
// population they receive, and the Guo source terms sum to zero over Q.
// The FP budget is relative 1e-12 — far above accumulated rounding,
// far below any dropped or duplicated population.
func checkMass(x *Ctx) error {
	c := x.Case
	if c.BC != BCPeriodic {
		return skipf("mass conservation needs a closed (periodic) domain, bc=%s", c.BC)
	}
	l, err := c.newLattice()
	if err != nil {
		return err
	}
	m0 := l.TotalMass()
	c.advance(l, nil, c.Steps, (*core.Lattice).StepFused)
	m1 := l.TotalMass()
	if tol := 1e-12 * math.Abs(m0); math.Abs(m1-m0) > tol {
		return fmt.Errorf("mass drift: %.17g -> %.17g (Δ=%.3g > %.3g)", m0, m1, m1-m0, tol)
	}
	return nil
}

// checkMomentum asserts global momentum conservation on periodic,
// obstacle-free, force-free domains (walls exchange momentum with the
// fluid and the Guo force injects it, so those cases are out of scope).
func checkMomentum(x *Ctx) error {
	c := x.Case
	if c.BC != BCPeriodic || c.Obst > 0 || c.Force != [3]float64{} {
		return skipf("momentum conservation needs periodic, wall-free, force-free flow")
	}
	l, err := c.newLattice()
	if err != nil {
		return err
	}
	jx0, jy0, jz0 := l.TotalMomentum()
	c.advance(l, nil, c.Steps, (*core.Lattice).StepFused)
	jx1, jy1, jz1 := l.TotalMomentum()
	cells := float64(c.NX * c.NY * c.NZ)
	tol := 1e-12 * cells
	for _, d := range []struct {
		name   string
		b4, af float64
	}{{"jx", jx0, jx1}, {"jy", jy0, jy1}, {"jz", jz0, jz1}} {
		if math.Abs(d.af-d.b4) > tol {
			return fmt.Errorf("momentum drift %s: %.17g -> %.17g (Δ=%.3g > %.3g)",
				d.name, d.b4, d.af, d.af-d.b4, tol)
		}
	}
	return nil
}

// checkRest asserts the quiescent state is a fixed point: with ρ=1, u=0
// everywhere (obstacles kept, no forcing, no driving boundary) the flow
// must stay at rest to within accumulated rounding. In exact arithmetic
// it is exactly fixed; in binary the D3Q19 weights do not sum to exactly
// one, so a per-step O(1e-16) residual is allowed for.
func checkRest(x *Ctx) error {
	c := x.Case
	if c.BC != BCPeriodic || c.Force != [3]float64{} {
		return skipf("rest fixed point needs an undriven periodic domain")
	}
	rest := func(gx, gy, gz int) (rho, ux, uy, uz float64) { return 1, 0, 0, 0 }
	l, err := c.buildLattice(c.Walls(), rest)
	if err != nil {
		return err
	}
	c.advance(l, nil, c.Steps, (*core.Lattice).StepFused)
	m := l.ComputeMacro()
	uTol := 1e-14 * float64(c.Steps+1)
	rhoTol := 1e-13 * float64(c.Steps+1)
	for i := range m.Rho {
		if m.Rho[i] == 0 {
			continue // solid cell
		}
		if math.Abs(m.Rho[i]-1) > rhoTol {
			return fmt.Errorf("rest state drifted: rho[%d]=%.17g (|Δ|>%.3g)", i, m.Rho[i], rhoTol)
		}
		if v := math.Max(math.Abs(m.Ux[i]), math.Max(math.Abs(m.Uy[i]), math.Abs(m.Uz[i]))); v > uTol {
			return fmt.Errorf("rest state drifted: |u|[%d]=%.3g > %.3g", i, v, uTol)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Symmetry properties. Each transform is applied to the *scenario*
// (walls, init, force), the transformed case is run from scratch, and
// the result must equal the transformed reference field. Translation is
// a pure relabeling of identical per-cell computations, so it is
// bit-exact; reflection and rotation permute the population order inside
// the moment and equilibrium sums, so they carry the documented
// Metamorphic tolerance.

func wrapCoord(v, n int) int { return ((v % n) + n) % n }

// checkTranslate asserts stepping commutes with periodic translation,
// bit-exactly.
func checkTranslate(x *Ctx) error {
	c := x.Case
	if c.BC != BCPeriodic {
		return skipf("translation symmetry needs periodic bc")
	}
	want, err := x.Reference()
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	dx, dy, dz := 3%c.NX, 2%c.NY, 1%c.NZ
	walls, init := c.Walls(), c.Init()
	var twalls WallsFunc
	if walls != nil {
		twalls = func(gx, gy, gz int) bool {
			return walls(wrapCoord(gx-dx, c.NX), wrapCoord(gy-dy, c.NY), wrapCoord(gz-dz, c.NZ))
		}
	}
	tinit := func(gx, gy, gz int) (rho, ux, uy, uz float64) {
		return init(wrapCoord(gx-dx, c.NX), wrapCoord(gy-dy, c.NY), wrapCoord(gz-dz, c.NZ))
	}
	l, err := c.buildLattice(twalls, tinit)
	if err != nil {
		return err
	}
	c.advance(l, nil, c.Steps, (*core.Lattice).StepFused)
	got := l.ComputeMacro()
	exp := emptyLike(want)
	forEachCell(want, func(gx, gy, gz, i int) {
		j := exp.Idx(wrapCoord(gx+dx, c.NX), wrapCoord(gy+dy, c.NY), wrapCoord(gz+dz, c.NZ))
		exp.Rho[j], exp.Ux[j], exp.Uy[j], exp.Uz[j] = want.Rho[i], want.Ux[i], want.Uy[i], want.Uz[i]
	})
	if err := Compare(exp, got, Exact); err != nil {
		return fmt.Errorf("translate(+%d,+%d,+%d): %w", dx, dy, dz, err)
	}
	return nil
}

// checkReflect asserts stepping commutes with the x-axis mirror.
func checkReflect(x *Ctx) error {
	c := x.Case
	if c.BC != BCPeriodic {
		return skipf("reflection symmetry needs periodic bc")
	}
	want, err := x.Reference()
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	mir := func(gx int) int { return c.NX - 1 - gx }
	walls, init := c.Walls(), c.Init()
	var rwalls WallsFunc
	if walls != nil {
		rwalls = func(gx, gy, gz int) bool { return walls(mir(gx), gy, gz) }
	}
	rinit := func(gx, gy, gz int) (rho, ux, uy, uz float64) {
		rho, ux, uy, uz = init(mir(gx), gy, gz)
		return rho, -ux, uy, uz
	}
	rc := *c
	rc.Force[0] = -c.Force[0]
	l, err := rc.buildLattice(rwalls, rinit)
	if err != nil {
		return err
	}
	rc.advance(l, nil, rc.Steps, (*core.Lattice).StepFused)
	got := l.ComputeMacro()
	exp := emptyLike(want)
	forEachCell(want, func(gx, gy, gz, i int) {
		j := exp.Idx(mir(gx), gy, gz)
		exp.Rho[j], exp.Ux[j], exp.Uy[j], exp.Uz[j] = want.Rho[i], -want.Ux[i], want.Uy[i], want.Uz[i]
	})
	if err := Compare(exp, got, Metamorphic); err != nil {
		return fmt.Errorf("reflect(x): %w", err)
	}
	return nil
}

// checkRotate asserts stepping commutes with a 90° rotation about z.
// The case is squared in the xy plane (NY := NX) so the rotation maps
// the lattice onto itself; destination (x', y') = (N-1-y, x), velocity
// (ux, uy) → (−uy, ux).
func checkRotate(x *Ctx) error {
	c := x.Case
	if c.BC != BCPeriodic {
		return skipf("rotation symmetry needs periodic bc")
	}
	sq := *c
	sq.NY = sq.NX
	n := sq.NX
	want, err := sq.Reference()
	if err != nil {
		return fmt.Errorf("square reference: %w", err)
	}
	walls, init := sq.Walls(), sq.Init()
	var rwalls WallsFunc
	if walls != nil {
		rwalls = func(gx, gy, gz int) bool { return walls(gy, n-1-gx, gz) }
	}
	rinit := func(gx, gy, gz int) (rho, ux, uy, uz float64) {
		rho, ux, uy, uz = init(gy, n-1-gx, gz)
		return rho, -uy, ux, uz
	}
	rc := sq
	rc.Force[0], rc.Force[1] = -sq.Force[1], sq.Force[0]
	l, err := rc.buildLattice(rwalls, rinit)
	if err != nil {
		return err
	}
	rc.advance(l, nil, rc.Steps, (*core.Lattice).StepFused)
	got := l.ComputeMacro()
	exp := emptyLike(want)
	forEachCell(want, func(gx, gy, gz, i int) {
		j := exp.Idx(n-1-gy, gx, gz)
		exp.Rho[j], exp.Ux[j], exp.Uy[j], exp.Uz[j] = want.Rho[i], -want.Uy[i], want.Ux[i], want.Uz[i]
	})
	if err := Compare(exp, got, Metamorphic); err != nil {
		return fmt.Errorf("rotate(90° about z, squared to %d×%d): %w", n, n, err)
	}
	return nil
}

// emptyLike allocates a zero field with the reference's shape.
func emptyLike(m *core.MacroField) *core.MacroField {
	n := m.NX * m.NY * m.NZ
	return &core.MacroField{NX: m.NX, NY: m.NY, NZ: m.NZ,
		Rho: make([]float64, n), Ux: make([]float64, n),
		Uy: make([]float64, n), Uz: make([]float64, n)}
}

// forEachCell visits every cell of the field with its linear index.
func forEachCell(m *core.MacroField, fn func(gx, gy, gz, i int)) {
	for gy := 0; gy < m.NY; gy++ {
		for gx := 0; gx < m.NX; gx++ {
			for gz := 0; gz < m.NZ; gz++ {
				fn(gx, gy, gz, m.Idx(gx, gy, gz))
			}
		}
	}
}

// ---------------------------------------------------------------------
// Checkpoint/restart properties.

// checkpointLayout is the rank grid the restart properties run on.
const ckptPX, ckptPY = 2, 2

// runGatherLattice runs a distributed simulation for steps and returns
// the gathered global lattice state from rank 0.
func runGatherLattice(opts psolve.Options, steps int) (*core.Lattice, error) {
	w, err := mpi.NewWorld(opts.PX * opts.PY)
	if err != nil {
		return nil, err
	}
	var out *core.Lattice
	err = mpi.RunWorld(w, func(cm *mpi.Comm) error {
		s, err := psolve.New(cm, opts)
		if err != nil {
			return err
		}
		for i := 0; i < steps; i++ {
			s.Step()
		}
		g, err := s.GatherLattice(0)
		if err != nil {
			return err
		}
		if g != nil {
			out = g
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// checkCheckpoint asserts checkpoint → serialize → restore → resume is
// bit-identical to an uninterrupted distributed run: the state round
// trips through the swio V2 (CRC-validated) encoding midway.
func checkCheckpoint(x *Ctx) error {
	c := x.Case
	k := c.Steps / 2
	if k < 1 {
		return skipf("checkpoint property needs ≥ 2 steps")
	}
	opts := c.Options(ckptPX, ckptPY, false)
	full, err := psolve.Run(opts, c.Steps)
	if err != nil {
		return skipf("distributed run: %v", err)
	}
	mid, err := runGatherLattice(opts, k)
	if err != nil {
		return skipf("checkpoint leg: %v", err)
	}
	var buf bytes.Buffer
	if err := swio.WriteCheckpoint(&buf, mid); err != nil {
		return fmt.Errorf("serialize at step %d: %w", k, err)
	}
	restored, err := swio.ReadCheckpoint(&buf)
	if err != nil {
		return fmt.Errorf("deserialize at step %d: %w", k, err)
	}
	opts.Restore = restored
	resumed, err := psolve.Run(opts, c.Steps-k)
	if err != nil {
		return fmt.Errorf("resume after restore: %w", err)
	}
	if err := Compare(full, resumed, Exact); err != nil {
		return fmt.Errorf("restore at step %d/%d diverges from uninterrupted run: %w", k, c.Steps, err)
	}
	return nil
}

// checkAAParity is the AA phase-parity metamorphic property: run the
// case on an in-place AA lattice, stop at an ODD step (where the storage
// layout is the reversed-shifted one), capture the state through the
// resil L1 path, restore it into a fresh AA lattice placed at the same
// parity, resume, and require the final field to match the uninterrupted
// serial reference bit-for-bit. The restore must also REFUSE a
// wrong-parity target with the typed resil.ErrPhaseMismatch — a restore
// that silently scatters an odd-phase payload into an even-phase layout
// would corrupt every population.
func checkAAParity(x *Ctx) error {
	c := x.Case
	if c.Steps < 2 {
		return skipf("aa-parity property needs ≥ 2 steps")
	}
	k := c.Steps / 2
	if k%2 == 0 {
		k-- // force an odd-parity stopping point (k ≥ 1 for Steps ≥ 2)
	}
	want, err := x.Reference()
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	l, err := c.newLattice()
	if err != nil {
		return err
	}
	l.EnableAA()
	c.advance(l, c.conds(), k, (*core.Lattice).StepFused)
	var snap resil.Snapshot
	resil.Capture(&snap, l, decomp.Block{NX: c.NX, NY: c.NY, NZ: c.NZ}, 0)

	wrong, err := c.newLattice()
	if err != nil {
		return err
	}
	wrong.EnableAA()
	wrong.SetStep(k + 1)
	if err := resil.RestoreInto(wrong, &snap); !errors.Is(err, resil.ErrPhaseMismatch) {
		return fmt.Errorf("restore of an odd-parity snapshot into an even-phase lattice returned %v, want ErrPhaseMismatch", err)
	}

	fresh, err := c.newLattice()
	if err != nil {
		return err
	}
	fresh.EnableAA()
	fresh.SetStep(k)
	if err := resil.RestoreInto(fresh, &snap); err != nil {
		return fmt.Errorf("restore at odd step %d: %w", k, err)
	}
	c.advance(fresh, c.conds(), c.Steps-k, (*core.Lattice).StepFused)
	if err := Compare(want, fresh.ComputeMacro(), Exact); err != nil {
		return fmt.Errorf("AA capture/restore at odd step %d/%d diverges from uninterrupted run: %w", k, c.Steps, err)
	}
	return nil
}

// checkFaultPlan asserts a supervised run that loses a rank mid-flight
// and recovers from its last verified checkpoint still produces the
// bit-identical flow (deterministic replay, §IV-B).
func checkFaultPlan(x *Ctx) error {
	c := x.Case
	if c.Steps < 2 {
		return skipf("fault-plan property needs ≥ 2 steps")
	}
	opts := c.Options(ckptPX, ckptPY, false)
	clean, err := psolve.Run(opts, c.Steps)
	if err != nil {
		return skipf("distributed run: %v", err)
	}
	plan := fault.Plan{
		Seed:    c.Seed,
		Crashes: []fault.Crash{{Rank: 1, Step: c.Steps / 2}},
	}
	supervised, _, err := psolve.Supervise(psolve.SupervisorOptions{
		Opts:            opts,
		Steps:           c.Steps,
		CheckpointEvery: 1,
		MaxRestarts:     3,
		Injector:        fault.NewInjector(plan),
	})
	if err != nil {
		return fmt.Errorf("supervised run failed to recover: %w", err)
	}
	if err := Compare(clean, supervised, Exact); err != nil {
		return fmt.Errorf("recovery from crash@step %d diverges: %w", c.Steps/2, err)
	}
	return nil
}

// checkRecoverHotswap asserts the memory-tier recovery path: a
// supervised run with the full L1|L2|L3 snapshot hierarchy that loses
// one rank in every parity group must repair itself from buddy copies
// and XOR parity alone — zero disk rollbacks — and still reproduce the
// fault-free flow bit-for-bit (MaxULP = 0, deterministic replay §IV-B).
func checkRecoverHotswap(x *Ctx) error {
	c := x.Case
	if c.Steps < 2 {
		return skipf("hot-swap property needs ≥ 2 steps")
	}
	opts := c.Options(ckptPX, ckptPY, false)
	clean, err := psolve.Run(opts, c.Steps)
	if err != nil {
		return skipf("distributed run: %v", err)
	}
	// One injected death per parity group: with 2×2 ranks and groups of
	// two this is the worst loss the memory tier must absorb without
	// touching the L4 file.
	k := c.Steps / 2
	plan := fault.Plan{
		Seed: c.Seed,
		GroupCrashes: []fault.GroupCrash{
			{Group: 0, Count: 1, Step: k},
			{Group: 1, Count: 1, Step: k},
		},
	}
	supervised, stats, err := psolve.Supervise(psolve.SupervisorOptions{
		Opts:            opts,
		Steps:           c.Steps,
		CheckpointEvery: c.Steps, // L4 file exists but must stay cold
		MaxRestarts:     3,
		SnapshotEvery:   1,
		Levels:          resil.L1 | resil.L2 | resil.L3 | resil.L4,
		GroupSize:       2,
		SpareRanks:      2,
		Injector:        fault.NewInjector(plan),
	})
	if err != nil {
		return fmt.Errorf("supervised run failed to hot-swap: %w", err)
	}
	if stats.DiskRollbacks != 0 {
		return fmt.Errorf("memory tier leaked to disk: %d rollbacks (hot swaps %d)",
			stats.DiskRollbacks, stats.HotSwaps)
	}
	if stats.HotSwaps < 1 {
		return fmt.Errorf("no hot swap recorded (restarts %d)", stats.Restarts)
	}
	if err := Compare(clean, supervised, Exact); err != nil {
		return fmt.Errorf("hot-swap recovery at step %d diverges: %w", k, err)
	}
	return nil
}
