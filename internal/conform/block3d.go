package conform

import (
	"fmt"

	"sunwaylb/internal/boundary"
	"sunwaylb/internal/core"
	"sunwaylb/internal/decomp"
	"sunwaylb/internal/lattice"
)

// blockGrid is a stitched serial driver over a 3-D block decomposition:
// every block owns its own core.Lattice and halos are copied between
// neighbouring blocks with the same Pack/UnpackFace layers the distributed
// solver ships over mpi. It exists to close the matrix gap the paper's
// 2-D production decomposition leaves open (§IV-C-1 argues 3-D splitting
// costs too much communication — but it must still compute the same
// flow), without teaching the mpi runtime a third cartesian axis.
//
// Per-step ordering mirrors psolve exactly so halo corners resolve
// identically: z halos first (neighbour exchange, or the local periodic
// wrap when pz=1), then the global-face conditions of edge blocks, then
// the x exchange, then the y exchange. Pack/UnpackFace cover the full
// allocated tangential extent, so running the axes in sequence propagates
// edge and corner values transitively exactly as the 2-D solver does.
type blockGrid struct {
	c          *Case
	px, py, pz int
	blocks     []decomp.Block
	lats       []*core.Lattice
	conds      [][]boundary.Condition

	// Scratch face buffers, sized for the largest face of each axis.
	buf   []float64
	flags []core.CellType
}

// RunBlocks3D executes the case over a px×py×pz block decomposition,
// stepping each block with the serial fused kernel and stitching the
// per-block macroscopic fields into the global one.
func (c *Case) RunBlocks3D(px, py, pz int) (*core.MacroField, error) {
	g, err := newBlockGrid(c, px, py, pz)
	if err != nil {
		return nil, err
	}
	for s := 0; s < c.Steps; s++ {
		g.step()
	}
	return g.gather(), nil
}

func newBlockGrid(c *Case, px, py, pz int) (*blockGrid, error) {
	blocks, err := decomp.Decompose3D(c.NX, c.NY, c.NZ, px, py, pz)
	if err != nil {
		return nil, err
	}
	g := &blockGrid{c: c, px: px, py: py, pz: pz, blocks: blocks}
	walls := c.Walls()
	init := c.Init()
	maxFace := 0
	for _, b := range blocks {
		if b.NX < 2 || b.NY < 2 || b.NZ < 2 {
			return nil, fmt.Errorf("conform: block %dx%dx%d too thin for %dx%dx%d grid",
				b.NX, b.NY, b.NZ, px, py, pz)
		}
		l, err := core.NewLattice(&lattice.D3Q19, b.NX, b.NY, b.NZ, c.Tau)
		if err != nil {
			return nil, err
		}
		l.Smagorinsky = c.Smagorinsky
		l.Force = c.Force
		for y := 0; y < b.NY; y++ {
			for x := 0; x < b.NX; x++ {
				for z := 0; z < b.NZ; z++ {
					if walls != nil && walls(b.X0+x, b.Y0+y, b.Z0+z) {
						l.SetWall(x, y, z)
					}
				}
			}
		}
		for y := 0; y < b.NY; y++ {
			for x := 0; x < b.NX; x++ {
				for z := 0; z < b.NZ; z++ {
					if l.CellTypeAt(x, y, z) != core.Fluid {
						continue
					}
					rho, ux, uy, uz := init(b.X0+x, b.Y0+y, b.Z0+z)
					l.SetCell(x, y, z, rho, ux, uy, uz)
				}
			}
		}
		g.lats = append(g.lats, l)
		g.conds = append(g.conds, g.blockConds(b))
		for _, f := range []core.Face{core.FaceXMin, core.FaceYMin, core.FaceZMin} {
			if n := l.FaceCells(f); n > maxFace {
				maxFace = n
			}
		}
	}
	g.buf = make([]float64, maxFace*lattice.D3Q19.Q)
	g.flags = make([]core.CellType, maxFace)
	return g, nil
}

// blockConds selects the global-face conditions this block applies, in
// the same fixed face order psolve uses.
func (g *blockGrid) blockConds(b decomp.Block) []boundary.Condition {
	c := g.c
	fb := c.faceBC()
	if fb == nil {
		return nil
	}
	touches := map[core.Face]bool{
		core.FaceXMin: b.X0 == 0,
		core.FaceXMax: b.X0+b.NX == c.NX,
		core.FaceYMin: b.Y0 == 0,
		core.FaceYMax: b.Y0+b.NY == c.NY,
		core.FaceZMin: b.Z0 == 0,
		core.FaceZMax: b.Z0+b.NZ == c.NZ,
	}
	var out []boundary.Condition
	for _, f := range []core.Face{core.FaceXMin, core.FaceXMax, core.FaceYMin,
		core.FaceYMax, core.FaceZMin, core.FaceZMax} {
		if touches[f] && fb[f] != nil {
			out = append(out, fb[f])
		}
	}
	return out
}

// at returns the block index of grid coordinate (bx, by, bz), matching
// decomp.Decompose3D's layout.
func (g *blockGrid) at(bx, by, bz int) int { return (bz*g.py+by)*g.px + bx }

// transfer copies the interior boundary layer at face of block src into
// the opposite halo layer of block dst. Pack reads layer 0 and Unpack
// writes layer 1, so in-place sequential transfers within one axis phase
// are order-independent (reads and writes never alias), reproducing the
// simultaneous semantics of the mpi exchange.
func (g *blockGrid) transfer(src, dst int, face core.Face) {
	var opp core.Face
	switch face {
	case core.FaceXMin:
		opp = core.FaceXMax
	case core.FaceXMax:
		opp = core.FaceXMin
	case core.FaceYMin:
		opp = core.FaceYMax
	case core.FaceYMax:
		opp = core.FaceYMin
	case core.FaceZMin:
		opp = core.FaceZMax
	case core.FaceZMax:
		opp = core.FaceZMin
	}
	ls, ld := g.lats[src], g.lats[dst]
	n := ls.FaceCells(face)
	q := ls.Desc.Q
	ls.PackFace(face, g.buf[:n*q], g.flags[:n])
	ld.UnpackFace(opp, g.buf[:n*q], g.flags[:n])
}

// exchangeAxis runs one axis phase over all block pairs (plus the
// periodic wrap across the global boundary when the axis is periodic).
func (g *blockGrid) exchangeAxis(axis int) {
	perX, perY, perZ := g.c.periodic()
	var parts int
	var periodic bool
	var minFace, maxFace core.Face
	switch axis {
	case 0:
		parts, periodic, minFace, maxFace = g.px, perX, core.FaceXMin, core.FaceXMax
	case 1:
		parts, periodic, minFace, maxFace = g.py, perY, core.FaceYMin, core.FaceYMax
	default:
		parts, periodic, minFace, maxFace = g.pz, perZ, core.FaceZMin, core.FaceZMax
	}
	if parts == 1 {
		if periodic {
			for _, l := range g.lats {
				l.PeriodicAxis(axis)
			}
		}
		return
	}
	each := func(fn func(bx, by, bz int)) {
		for bz := 0; bz < g.pz; bz++ {
			for by := 0; by < g.py; by++ {
				for bx := 0; bx < g.px; bx++ {
					fn(bx, by, bz)
				}
			}
		}
	}
	each(func(bx, by, bz int) {
		coord := [3]int{bx, by, bz}
		if coord[axis] == parts-1 && !periodic {
			return
		}
		next := coord
		next[axis] = (coord[axis] + 1) % parts
		a := g.at(coord[0], coord[1], coord[2])
		b := g.at(next[0], next[1], next[2])
		// a's upper interior layer fills b's lower halo, and vice versa.
		g.transfer(a, b, maxFace)
		g.transfer(b, a, minFace)
	})
}

// step advances all blocks one time step.
func (g *blockGrid) step() {
	g.exchangeAxis(2)
	for i, l := range g.lats {
		for _, bc := range g.conds[i] {
			bc.Apply(l)
		}
	}
	g.exchangeAxis(0)
	g.exchangeAxis(1)
	for _, l := range g.lats {
		l.StepFused()
	}
}

// gather stitches the per-block macroscopic fields into the global field.
func (g *blockGrid) gather() *core.MacroField {
	c := g.c
	out := &core.MacroField{
		NX: c.NX, NY: c.NY, NZ: c.NZ,
		Rho: make([]float64, c.NX*c.NY*c.NZ),
		Ux:  make([]float64, c.NX*c.NY*c.NZ),
		Uy:  make([]float64, c.NX*c.NY*c.NZ),
		Uz:  make([]float64, c.NX*c.NY*c.NZ),
	}
	for i, b := range g.blocks {
		m := g.lats[i].ComputeMacro()
		for y := 0; y < b.NY; y++ {
			for x := 0; x < b.NX; x++ {
				for z := 0; z < b.NZ; z++ {
					li := m.Idx(x, y, z)
					gi := out.Idx(b.X0+x, b.Y0+y, b.Z0+z)
					out.Rho[gi] = m.Rho[li]
					out.Ux[gi] = m.Ux[li]
					out.Uy[gi] = m.Uy[li]
					out.Uz[gi] = m.Uz[li]
				}
			}
		}
	}
	return out
}
