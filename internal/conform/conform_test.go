package conform

import (
	"strings"
	"testing"
)

// TestSuiteSmall runs the whole matrix over a handful of generated cases
// (the CI tier runs the full 25+ through cmd/conform).
func TestSuiteSmall(t *testing.T) {
	rep, err := RunSuite(Config{Seed: 1, Cases: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("oracle violation: %s", f)
	}
	if rep.Checks != rep.Cases*rep.Oracles {
		t.Fatalf("checks=%d, want %d", rep.Checks, rep.Cases*rep.Oracles)
	}
	if rep.Passed == 0 {
		t.Fatal("no check passed")
	}
}

// TestSuiteDeterministic: the same seed must replay the same generated
// cases, check counts and outcomes.
func TestSuiteDeterministic(t *testing.T) {
	a, err := RunSuite(Config{Seed: 42, Cases: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuite(Config{Seed: 42, Cases: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Checks != b.Checks || a.Passed != b.Passed || a.Skipped != b.Skipped || len(a.Failures) != len(b.Failures) {
		t.Fatalf("non-deterministic suite: %s vs %s", a.Summary(), b.Summary())
	}
}

func TestSuiteRunFilter(t *testing.T) {
	rep, err := RunSuite(Config{Seed: 3, Cases: 1, Run: `^swlb/`})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Oracles != len(swlbStages()) {
		t.Fatalf("filter matched %d oracles, want %d", rep.Oracles, len(swlbStages()))
	}
	if !rep.OK() {
		t.Fatalf("swlb stages failed: %v", rep.Failures)
	}
	if _, err := RunSuite(Config{Seed: 3, Cases: 1, Run: "no-such-oracle"}); err == nil {
		t.Fatal("unmatched -run pattern accepted")
	}
	if _, err := RunSuite(Config{Seed: 3, Cases: 1, Run: "("}); err == nil {
		t.Fatal("invalid -run regexp accepted")
	}
}

// TestEdgeCaseBattery runs hand-picked adversarial replay strings
// through every oracle: near-critical tau, minimal grids, sticky
// regime/LES/forcing combinations. Everything must pass or skip.
func TestEdgeCaseBattery(t *testing.T) {
	replays := []string{
		"v1;seed=1;grid=8x8x8;tau=0.501;steps=4;bc=periodic",
		"v1;seed=2;grid=8x8x8;tau=5;steps=4;bc=periodic;obst=2",
		"v1;seed=3;grid=2x2x2;tau=0.8;steps=6;bc=periodic",
		"v1;seed=4;grid=2x3x4;tau=0.7;steps=5;bc=lid",
		"v1;seed=5;grid=4x2x3;tau=0.9;steps=5;bc=channel",
		"v1;seed=6;grid=8x8x8;tau=0.55;steps=6;bc=lid;obst=1;smag=0.2",
		"v1;seed=7;grid=8x8x8;tau=0.6;steps=6;bc=channel;obst=2;smag=0.15",
		"v1;seed=8;grid=9x9x9;tau=0.65;steps=6;bc=periodic;obst=2;force=1e-05,-1e-05,1e-05;smag=0.12",
		"v1;seed=9;grid=12x2x12;tau=0.75;steps=4;bc=periodic",
		"v1;seed=10;grid=3x3x3;tau=1.1;steps=8;bc=lid",
	}
	for _, s := range replays {
		c, err := ParseCase(s)
		if err != nil {
			t.Fatalf("battery case %q: %v", s, err)
		}
		x := &Ctx{Case: c}
		for _, o := range Oracles() {
			err := safeCheck(o, x)
			if err != nil && !IsSkip(err) {
				min := Shrink(c, func(cand *Case) bool {
					e := safeCheck(o, &Ctx{Case: cand})
					return e != nil && !IsSkip(e)
				})
				t.Errorf("%s FAILS %s: %v\n  minimal replay: %s", s, o.Name, err, min)
			}
		}
	}
}

// TestFailureStringCarriesReplay ensures the report renders an
// executable reproduction line.
func TestFailureStringCarriesReplay(t *testing.T) {
	c, _ := ParseCase("v1;seed=1;grid=2x2x2;tau=0.8;steps=1")
	f := Failure{Oracle: "mutant/drop-population", Orig: c, Min: c,
		Err: RunOracle("mutant/drop-population", c)}
	s := f.String()
	if !strings.Contains(s, "-replay 'v1;seed=1;grid=2x2x2") || !strings.Contains(s, "mutant/drop-population") {
		t.Fatalf("failure string lacks replay info: %q", s)
	}
}

// TestBackendNamesCoverIssueMatrix pins the acceptance matrix: the rank
// counts {1,2,4,8} across 1-D/2-D/3-D decompositions, every swlb stage,
// and the gpu path must all be present.
func TestBackendNamesCoverIssueMatrix(t *testing.T) {
	have := map[string]bool{}
	for _, n := range BackendNames() {
		have[n] = true
	}
	for _, want := range []string{
		"core/unfused", "core/parallel",
		"psolve/1x1", "psolve/2x1", "psolve/1x2", "psolve/4x1",
		"psolve/2x2", "psolve/2x2-onthefly", "psolve/8x1", "psolve/4x2",
		"block3d/1x1x2", "block3d/1x2x2", "block3d/2x2x2",
		"gpu/node",
		"swlb/mpe-baseline", "swlb/cpe-unfused", "swlb/cpe-fused",
		"swlb/fused-ysharing", "swlb/full",
	} {
		if !have[want] {
			t.Errorf("backend matrix lacks %s", want)
		}
	}
}

func TestRunOracleUnknownName(t *testing.T) {
	c, _ := ParseCase("v1;seed=1;grid=2x2x2;tau=0.8;steps=1")
	if err := RunOracle("definitely/not-an-oracle", c); err == nil {
		t.Fatal("unknown oracle accepted")
	}
}
