package conform

import (
	"fmt"

	"sunwaylb/internal/boundary"
	"sunwaylb/internal/core"
	"sunwaylb/internal/gpu"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/patch"
	"sunwaylb/internal/psolve"
	"sunwaylb/internal/sunway"
	"sunwaylb/internal/swlb"
)

// LidSpeed and InletSpeed are the fixed driving velocities of the lid and
// channel regimes (small Mach so every generated case stays stable).
const (
	LidSpeed   = 0.04
	InletSpeed = 0.04
)

// Backend is one implementation under test: it runs a Case from scratch
// and returns the gathered global macroscopic field.
type Backend struct {
	// Name identifies the backend in reports ("swlb/full", "psolve/2x2").
	Name string
	// Run executes the case. An error means the backend cannot represent
	// the case (e.g. too few cells for the rank layout) — the oracle
	// skips it — while a mismatch is reported by the comparator.
	Run func(c *Case) (*core.MacroField, error)
}

// conds builds the boundary-condition set of the case's regime in the
// fixed face order psolve applies them (XMin, XMax, YMin, YMax, ZMin,
// ZMax), so serial and distributed runs agree bit-for-bit at halo corners
// where a later condition overwrites an earlier one.
func (c *Case) conds() []boundary.Condition {
	switch c.BC {
	case BCLid:
		return []boundary.Condition{
			&boundary.NoSlip{Face: core.FaceXMin},
			&boundary.NoSlip{Face: core.FaceXMax},
			&boundary.NoSlip{Face: core.FaceYMin},
			&boundary.NoSlip{Face: core.FaceYMax},
			&boundary.NoSlip{Face: core.FaceZMin},
			&boundary.MovingNoSlip{Face: core.FaceZMax, U: [3]float64{LidSpeed, 0, 0}},
		}
	case BCChannel:
		return []boundary.Condition{
			&boundary.VelocityInlet{Face: core.FaceXMin, Rho: 1, U: [3]float64{InletSpeed, 0, 0}},
			&boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
			&boundary.NoSlip{Face: core.FaceYMin},
			&boundary.NoSlip{Face: core.FaceYMax},
		}
	}
	return nil
}

// periodic reports the per-axis periodicity of the regime.
func (c *Case) periodic() (px, py, pz bool) {
	switch c.BC {
	case BCPeriodic:
		return true, true, true
	case BCChannel:
		return false, false, true
	}
	return false, false, false
}

// faceBC renders conds as the map psolve consumes.
func (c *Case) faceBC() map[core.Face]boundary.Condition {
	conds := c.conds()
	if len(conds) == 0 {
		return nil
	}
	m := make(map[core.Face]boundary.Condition, len(conds))
	for _, cond := range conds {
		switch bc := cond.(type) {
		case *boundary.NoSlip:
			m[bc.Face] = bc
		case *boundary.MovingNoSlip:
			m[bc.Face] = bc
		case *boundary.VelocityInlet:
			m[bc.Face] = bc
		case *boundary.PressureOutlet:
			m[bc.Face] = bc
		}
	}
	return m
}

// Options derives the distributed-solver configuration for the case on a
// px×py rank grid.
func (c *Case) Options(px, py int, onTheFly bool) psolve.Options {
	perX, perY, perZ := c.periodic()
	return psolve.Options{
		GNX: c.NX, GNY: c.NY, GNZ: c.NZ,
		PX: px, PY: py,
		Tau:         c.Tau,
		Smagorinsky: c.Smagorinsky,
		Force:       c.Force,
		PeriodicX:   perX, PeriodicY: perY, PeriodicZ: perZ,
		FaceBC:   c.faceBC(),
		Walls:    c.Walls(),
		Init:     c.Init(),
		OnTheFly: onTheFly,
	}
}

// WallsFunc and InitFunc are the geometry and initial-condition
// signatures shared by all backends (global coordinates).
type WallsFunc = func(gx, gy, gz int) bool

// InitFunc supplies the initial macroscopic state per global cell.
type InitFunc = func(gx, gy, gz int) (rho, ux, uy, uz float64)

// buildLattice allocates a standalone lattice for the case's dimensions
// and physics with the given geometry and initial conditions applied
// exactly as psolve does per rank (walls first, then init on fluid cells
// only). The metamorphic properties pass transformed walls/init here.
func (c *Case) buildLattice(walls WallsFunc, init InitFunc) (*core.Lattice, error) {
	l, err := core.NewLattice(&lattice.D3Q19, c.NX, c.NY, c.NZ, c.Tau)
	if err != nil {
		return nil, err
	}
	l.Smagorinsky = c.Smagorinsky
	l.Force = c.Force
	if walls != nil {
		for y := 0; y < c.NY; y++ {
			for x := 0; x < c.NX; x++ {
				for z := 0; z < c.NZ; z++ {
					if walls(x, y, z) {
						l.SetWall(x, y, z)
					}
				}
			}
		}
	}
	if init != nil {
		for y := 0; y < c.NY; y++ {
			for x := 0; x < c.NX; x++ {
				for z := 0; z < c.NZ; z++ {
					if l.CellTypeAt(x, y, z) != core.Fluid {
						continue
					}
					rho, ux, uy, uz := init(x, y, z)
					l.SetCell(x, y, z, rho, ux, uy, uz)
				}
			}
		}
	}
	return l, nil
}

// newLattice builds the case's canonical standalone lattice.
func (c *Case) newLattice() (*core.Lattice, error) {
	return c.buildLattice(c.Walls(), c.Init())
}

// advance runs steps time steps on a standalone lattice: boundary fill in
// psolve's order, then one kernel invocation.
func (c *Case) advance(l *core.Lattice, conds []boundary.Condition, steps int, step func(l *core.Lattice)) {
	for s := 0; s < steps; s++ {
		c.applyBCs(l, conds)
		step(l)
	}
}

// applyBCs fills the halo of a standalone lattice in psolve's order:
// periodic z wrap, face conditions, then the periodic x and y wraps that
// stand in for the (single-rank) halo exchange.
func (c *Case) applyBCs(l *core.Lattice, conds []boundary.Condition) {
	perX, perY, perZ := c.periodic()
	if perZ {
		l.PeriodicAxis(2)
	}
	for _, bc := range conds {
		bc.Apply(l)
	}
	if perX {
		l.PeriodicAxis(0)
	}
	if perY {
		l.PeriodicAxis(1)
	}
}

// RunSerial executes the case on a standalone lattice, advancing with
// step (e.g. (*core.Lattice).StepFused). It is the harness's reference
// implementation: no mpi, no decomposition, no stepper indirection.
func (c *Case) RunSerial(step func(l *core.Lattice)) (*core.MacroField, error) {
	l, err := c.newLattice()
	if err != nil {
		return nil, err
	}
	c.advance(l, c.conds(), c.Steps, step)
	return l.ComputeMacro(), nil
}

// Reference runs the case through the serial fused kernel — the oracle
// every other backend is compared against.
func (c *Case) Reference() (*core.MacroField, error) {
	return c.RunSerial((*core.Lattice).StepFused)
}

// RunSerialAA executes the case on a standalone AA-pattern (in-place)
// lattice: tile sizes ty/tz select cache blocking (0,0 = unblocked) and
// workers > 1 drives the steps through a persistent worker pool instead
// of the serial sweep. All variants must match the double-buffer
// reference bit-for-bit at every step parity.
func (c *Case) RunSerialAA(ty, tz, workers int) (*core.MacroField, error) {
	l, err := c.newLattice()
	if err != nil {
		return nil, err
	}
	l.EnableAA()
	if ty > 0 || tz > 0 {
		l.SetAATiles(ty, tz)
	}
	if workers > 1 {
		p := core.NewPool(l, workers)
		defer p.Close()
		c.advance(l, c.conds(), c.Steps, func(*core.Lattice) { p.Step() })
	} else {
		c.advance(l, c.conds(), c.Steps, (*core.Lattice).StepFused)
	}
	return l.ComputeMacro(), nil
}

// funcStepper adapts a plain kernel function to psolve.Stepper.
type funcStepper func()

func (f funcStepper) Step() float64 { f(); return 0 }
func (f funcStepper) Rebuild()      {}

// testChip returns the small simulated core group every swlb conformance
// backend runs on: 4 CPEs with SW26010-sized 64 KiB LDM, so CPE blocking,
// sharing and DMA paths are all exercised without the cost of 64 cores.
func testChip() sunway.ChipSpec { return sunway.TestChip(4, 64*1024) }

// swlbStage builds a psolve stepper factory for one optimization stage.
func swlbStage(opt swlb.Options) func(l *core.Lattice) (psolve.Stepper, error) {
	return func(l *core.Lattice) (psolve.Stepper, error) {
		return swlb.New(l, testChip(), opt)
	}
}

// swlbStages is the Fig. 8 ablation ladder: each entry switches on one
// more optimization, and every rung must compute the identical flow.
func swlbStages() []struct {
	Name string
	Opt  swlb.Options
} {
	return []struct {
		Name string
		Opt  swlb.Options
	}{
		{"swlb/mpe-baseline", swlb.BaselineOptions()},
		{"swlb/cpe-unfused", swlb.Options{UseCPEs: true, ComputeEff: 0.1, BZ: 70}},
		{"swlb/cpe-fused", swlb.Options{UseCPEs: true, Fused: true, ComputeEff: 0.3, BZ: 70}},
		{"swlb/fused-ysharing", swlb.Options{UseCPEs: true, Fused: true, YSharing: true, ComputeEff: 0.55, BZ: 70}},
		{"swlb/full", swlb.DefaultOptions()},
	}
}

// psolveBackend runs the case on a px×py rank grid through the in-process
// mpi world. kernel selects the local compute kernel ("" = fused).
func psolveBackend(name string, px, py int, onTheFly bool, kernel string) Backend {
	return Backend{Name: name, Run: func(c *Case) (*core.MacroField, error) {
		if c.NX < px || c.NY < py {
			return nil, fmt.Errorf("conform: %s needs nx≥%d, ny≥%d", name, px, py)
		}
		opts := c.Options(px, py, onTheFly)
		opts.Kernel = kernel
		return psolve.Run(opts, c.Steps)
	}}
}

// stepperBackend runs the case single-rank through psolve with a custom
// kernel driver (swlb stage, gpu node model, or plain kernel adapter).
func stepperBackend(name string, stepper func(l *core.Lattice) (psolve.Stepper, error)) Backend {
	return Backend{Name: name, Run: func(c *Case) (*core.MacroField, error) {
		opts := c.Options(1, 1, false)
		opts.Stepper = stepper
		return psolve.Run(opts, c.Steps)
	}}
}

// Backends returns the full conformance matrix (every entry must match
// the serial reference bit-for-bit):
//
//   - serial kernel variants (unfused two-pass, data-parallel fused),
//   - the in-place AA-pattern kernel: plain, cache-blocked and through
//     the persistent worker pool, plus a distributed run on AA ranks,
//   - the single-rank distributed solver (validates the mpi plumbing),
//   - every swlb optimization stage on a simulated Sunway core group,
//   - the GPU node model,
//   - multi-rank 1-D and 2-D decompositions at 2, 4 and 8 ranks,
//     sequential and on-the-fly, plus stitched 3-D block decompositions,
//   - the patch-decomposed world: homogeneous, mixed core/swlb/gpu
//     owners, and mixed owners with a forced migration after every step.
func Backends() []Backend {
	bs := []Backend{
		{Name: "core/unfused", Run: func(c *Case) (*core.MacroField, error) {
			return c.RunSerial((*core.Lattice).StepUnfused)
		}},
		{Name: "core/parallel", Run: func(c *Case) (*core.MacroField, error) {
			return c.RunSerial(func(l *core.Lattice) { l.StepFusedParallel(0) })
		}},
		{Name: "core/aa", Run: func(c *Case) (*core.MacroField, error) {
			return c.RunSerialAA(0, 0, 1)
		}},
		{Name: "core/aa-blocked", Run: func(c *Case) (*core.MacroField, error) {
			return c.RunSerialAA(4, 8, 1)
		}},
		{Name: "core/aa-pool", Run: func(c *Case) (*core.MacroField, error) {
			return c.RunSerialAA(2, 4, 3)
		}},
		psolveBackend("psolve/1x1", 1, 1, false, ""),
		psolveBackend("psolve/2x1", 2, 1, false, ""),
		psolveBackend("psolve/1x2", 1, 2, false, ""),
		psolveBackend("psolve/4x1", 4, 1, false, ""),
		psolveBackend("psolve/2x2", 2, 2, false, ""),
		psolveBackend("psolve/2x2-onthefly", 2, 2, true, ""),
		psolveBackend("psolve/2x2-aa", 2, 2, false, "aa"),
		psolveBackend("psolve/8x1", 8, 1, false, ""),
		psolveBackend("psolve/4x2", 4, 2, false, ""),
		{Name: "block3d/1x1x2", Run: func(c *Case) (*core.MacroField, error) { return c.RunBlocks3D(1, 1, 2) }},
		{Name: "block3d/1x2x2", Run: func(c *Case) (*core.MacroField, error) { return c.RunBlocks3D(1, 2, 2) }},
		{Name: "block3d/2x2x2", Run: func(c *Case) (*core.MacroField, error) { return c.RunBlocks3D(2, 2, 2) }},
		stepperBackend("gpu/node", func(l *core.Lattice) (psolve.Stepper, error) {
			return gpu.NewEngine(l, gpu.RTX3090Cluster, gpu.Fig11Final())
		}),
	}
	for _, st := range swlbStages() {
		bs = append(bs, stepperBackend(st.Name, swlbStage(st.Opt)))
	}
	bs = append(bs,
		patchBackend("patch/2x2x1", 2, 2, 1, 0, func() []patch.Worker { return make([]patch.Worker, 2) }),
		patchBackend("patch/mixed", 2, 2, 2, 0, patchMixedWorkers),
		patchBackend("patch/mixed-migrate", 2, 1, 2, 1, patchMixedWorkers),
	)
	return bs
}

// BackendNames lists the matrix in order (for -run matching diagnostics).
func BackendNames() []string {
	bs := Backends()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}
