package conform

import (
	"sunwaylb/internal/core"
	"sunwaylb/internal/patch"
	"sunwaylb/internal/psolve"
	"sunwaylb/internal/swlb"
)

// patchOptions converts the case into a patch-world configuration. The
// requested tiling is clamped per axis so every cut axis still yields
// patches at least two cells thick (the halo protocol's minimum), which
// lets one backend definition serve every generated case size.
func (c *Case) patchOptions(tx, ty, tz int, workers []patch.Worker) patch.Options {
	clamp := func(t, n int) int {
		if t > n/2 {
			t = n / 2
		}
		if t < 1 {
			t = 1
		}
		return t
	}
	perX, perY, perZ := c.periodic()
	return patch.Options{
		GNX: c.NX, GNY: c.NY, GNZ: c.NZ,
		TX: clamp(tx, c.NX), TY: clamp(ty, c.NY), TZ: clamp(tz, c.NZ),
		Tau:         c.Tau,
		Smagorinsky: c.Smagorinsky,
		Force:       c.Force,
		PeriodicX:   perX, PeriodicY: perY, PeriodicZ: perZ,
		FaceBC:  c.faceBC(),
		Walls:   c.Walls(),
		Init:    c.Init(),
		Workers: workers,
	}
}

// patchMixedWorkers stitches all three executor families into one world:
// a plain core worker, an swlb worker on the small conformance chip (the
// same 4-CPE group the swlb backends use), and the GPU node model.
func patchMixedWorkers() []patch.Worker {
	return []patch.Worker{
		{Backend: patch.BackendCore},
		{Backend: patch.BackendSunway, Stepper: func(l *core.Lattice) (psolve.Stepper, error) {
			return swlb.New(l, testChip(), swlb.DefaultOptions())
		}},
		{Backend: patch.BackendGPU},
	}
}

// patchBackend runs the case through the patch-decomposed world.
// forceEvery > 0 rotates every patch to the next worker that often,
// proving migrations preserve bit-identity mid-run.
func patchBackend(name string, tx, ty, tz, forceEvery int, workers func() []patch.Worker) Backend {
	return Backend{Name: name, Run: func(c *Case) (*core.MacroField, error) {
		opt := c.patchOptions(tx, ty, tz, workers())
		opt.ForceMigrateEvery = forceEvery
		f, _, err := patch.Run(opt, c.Steps)
		return f, err
	}}
}
