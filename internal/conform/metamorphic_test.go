package conform

import (
	"testing"
)

func mustParse(t *testing.T, s string) *Case {
	t.Helper()
	c, err := ParseCase(s)
	if err != nil {
		t.Fatalf("ParseCase(%q): %v", s, err)
	}
	return c
}

// The physics properties must pass on representative in-scope cases.
func TestPropertiesPassInScope(t *testing.T) {
	periodic := mustParse(t, "v1;seed=21;grid=8x9x8;tau=0.7;steps=4;bc=periodic;obst=1")
	forced := mustParse(t, "v1;seed=22;grid=8x8x8;tau=0.8;steps=4;bc=periodic;force=1e-05,-5e-06,2e-06")
	smag := mustParse(t, "v1;seed=23;grid=8x8x8;tau=0.6;steps=3;bc=periodic;smag=0.15")
	free := mustParse(t, "v1;seed=24;grid=8x8x9;tau=0.75;steps=4;bc=periodic")

	checks := []struct {
		name  string
		c     *Case
		check func(x *Ctx) error
	}{
		{"mass/obstacles", periodic, checkMass},
		{"mass/forced", forced, checkMass},
		{"mass/les", smag, checkMass},
		{"momentum/free", free, checkMomentum},
		{"rest/obstacles", periodic, checkRest},
		{"translate/obstacles", periodic, checkTranslate},
		{"translate/forced", forced, checkTranslate},
		{"reflect/obstacles", periodic, checkReflect},
		{"reflect/forced", forced, checkReflect},
		{"reflect/les", smag, checkReflect},
		{"rotate/obstacles", periodic, checkRotate},
		{"rotate/forced", forced, checkRotate},
	}
	for _, tc := range checks {
		if err := tc.check(&Ctx{Case: tc.c}); err != nil {
			t.Errorf("%s on %s: %v", tc.name, tc.c, err)
		}
	}
}

// Out-of-scope regimes must skip, not fail.
func TestPropertiesSkipOutOfScope(t *testing.T) {
	lid := mustParse(t, "v1;seed=31;grid=8x8x8;tau=0.8;steps=3;bc=lid")
	channel := mustParse(t, "v1;seed=32;grid=8x8x8;tau=0.8;steps=3;bc=channel")
	walled := mustParse(t, "v1;seed=33;grid=8x8x8;tau=0.8;steps=3;bc=periodic;obst=1")
	forced := mustParse(t, "v1;seed=34;grid=8x8x8;tau=0.8;steps=3;bc=periodic;force=1e-05,0,0")

	skips := []struct {
		name  string
		c     *Case
		check func(x *Ctx) error
	}{
		{"mass/lid", lid, checkMass},
		{"momentum/channel", channel, checkMomentum},
		{"momentum/walled", walled, checkMomentum},
		{"momentum/forced", forced, checkMomentum},
		{"rest/forced", forced, checkRest},
		{"translate/lid", lid, checkTranslate},
		{"reflect/channel", channel, checkReflect},
		{"rotate/lid", lid, checkRotate},
	}
	for _, tc := range skips {
		err := tc.check(&Ctx{Case: tc.c})
		if err == nil || !IsSkip(err) {
			t.Errorf("%s: want skip, got %v", tc.name, err)
		}
	}
}

// Checkpoint and fault-plan recovery must hold in every regime —
// including a driven cavity whose MovingWall state lives in the halo and
// must be rebuilt by the boundary conditions after restore.
func TestRestartPropertiesAcrossRegimes(t *testing.T) {
	for _, s := range []string{
		"v1;seed=41;grid=8x8x8;tau=0.7;steps=4;bc=periodic;obst=1",
		"v1;seed=42;grid=8x8x8;tau=0.8;steps=4;bc=lid",
		"v1;seed=43;grid=8x8x8;tau=0.75;steps=4;bc=channel",
	} {
		c := mustParse(t, s)
		if err := checkCheckpoint(&Ctx{Case: c}); err != nil {
			t.Errorf("prop/checkpoint on %s: %v", s, err)
		}
		if err := checkFaultPlan(&Ctx{Case: c}); err != nil {
			t.Errorf("prop/faultplan on %s: %v", s, err)
		}
	}
}

// The differential matrix is exercised end-to-end on one case per
// regime (the suite test covers generated mixes; this pins each regime
// explicitly so a regression names the backend AND the regime).
func TestMatrixPerRegime(t *testing.T) {
	for _, s := range []string{
		"v1;seed=51;grid=8x8x8;tau=0.7;steps=3;bc=periodic;obst=2;force=1e-05,0,-1e-05",
		"v1;seed=52;grid=9x8x8;tau=0.8;steps=3;bc=lid;obst=1",
		"v1;seed=53;grid=10x8x8;tau=0.65;steps=3;bc=channel;smag=0.12",
	} {
		c := mustParse(t, s)
		x := &Ctx{Case: c}
		for _, b := range Backends() {
			got, err := b.Run(c)
			if err != nil {
				t.Errorf("%s on %s: %v", b.Name, s, err)
				continue
			}
			want, err := x.Reference()
			if err != nil {
				t.Fatalf("reference on %s: %v", s, err)
			}
			if err := Compare(want, got, Exact); err != nil {
				t.Errorf("%s diverges on %s: %v", b.Name, s, err)
			}
		}
	}
}
