package conform

import (
	"fmt"
	"math"

	"sunwaylb/internal/core"
)

// Mutation sensitivity: known numerical bugs are injected into a shadow
// kernel — an independent, descriptor-generic BGK pull step — and the
// suite asserts the oracles *catch* each one. A conformance harness that
// cannot see a flipped relaxation sign has no business gating refactors,
// so the harness's statistical power is itself under test (the same way
// mutation testing scores a unit-test suite).
//
// The shadow kernel intentionally supports only the periodic, force-free,
// DNS subset (mutation cases are normalized into it); bugs must be caught
// there or they would hide behind regime complexity.

// Mutation is one injected bug: a buggy full-step kernel plus the story
// of which oracle class is expected to catch it.
type Mutation struct {
	Name string
	// Detects documents the expected detection channel.
	Detects string
	// Step advances the lattice one (buggy) time step.
	Step func(l *core.Lattice)
	// Control, if non-nil, is the clean twin of Step — the same shadow
	// kernel with no bug injected — used as the control arm instead of
	// the default plain shadow kernel (e.g. the AA shadow kernel, whose
	// stepping discipline differs from the double-buffer one).
	Control func(l *core.Lattice)
}

// Mutations returns the injected-bug catalogue.
func Mutations() []Mutation {
	return []Mutation{
		{
			Name: "flip-relax-sign",
			// BGK collision conserves ρ and j for either sign, so the
			// conservation oracles are blind to this one by design —
			// only the differential oracle can see it.
			Detects: "differential oracle (conservation laws hold for both signs)",
			Step:    func(l *core.Lattice) { shadowStep(l, bugFlipRelax) },
		},
		{
			Name:    "halo-off-by-one",
			Detects: "differential oracle and mass conservation",
			Step:    func(l *core.Lattice) { shadowStep(l, bugHaloOffByOne) },
		},
		{
			Name:    "drop-population",
			Detects: "mass conservation (and differential oracle)",
			Step:    func(l *core.Lattice) { shadowStep(l, bugDropPopulation) },
		},
		{
			Name: "aa-swap",
			// Scattering into slot i instead of Opp[i] parks populations
			// in slots the odd-phase readers (kernel and diagnostics)
			// never look at, so observable mass drifts immediately.
			Detects: "mass oracle (and differential oracle): populations land where phase-aware readers never look",
			Step:    func(l *core.Lattice) { shadowStepAA(l, bugAASwap) },
			Control: func(l *core.Lattice) { shadowStepAA(l, bugNone) },
		},
	}
}

type shadowBug int

const (
	bugNone shadowBug = iota
	// bugFlipRelax relaxes away from equilibrium: f + (f−feq)/τ.
	bugFlipRelax
	// bugHaloOffByOne pulls the +z population from the cell itself
	// instead of its −z neighbour (the classic halo indexing slip).
	bugHaloOffByOne
	// bugDropPopulation zeroes one gathered population.
	bugDropPopulation
	// bugAASwap scatters the even AA half-step into the natural slot i
	// instead of the reversed slot Opp[i] — forgetting the direction
	// reversal that makes the in-place AA pattern work.
	bugAASwap
)

// shadowStep is the shadow kernel: a plain descriptor-generic BGK pull
// collide–stream step (no forcing, no LES, resting-wall bounce-back
// only), written independently of core.stepRegionGeneric so a bug in one
// cannot mask the same bug in the other.
func shadowStep(l *core.Lattice, bug shadowBug) {
	d := l.Desc
	q := d.Q
	n := l.N
	src := l.Src()
	dst := l.Dst()
	invTau := 1.0 / l.Tau

	// Neighbour offsets, recomputed from the descriptor (not borrowed
	// from the lattice's private table).
	var offs [core.MaxQ]int
	zPlus := -1
	for i := 0; i < q; i++ {
		c := d.C[i]
		offs[i] = c[1]*l.AX*l.AZ + c[0]*l.AZ + c[2]
		if c[0] == 0 && c[1] == 0 && c[2] == 1 {
			zPlus = i
		}
	}
	var fArr, feqArr [core.MaxQ]float64
	f, feq := fArr[:q], feqArr[:q]

	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				idx := l.Idx(x, y, z)
				if l.Flags[idx] != core.Fluid {
					continue
				}
				for i := 0; i < q; i++ {
					from := idx - offs[i]
					if bug == bugHaloOffByOne && i == zPlus {
						from = idx // off by one in z: pulls itself
					}
					if l.Flags[from] == core.Wall || l.Flags[from] == core.MovingWall {
						f[i] = src[d.Opp[i]*n+idx]
					} else {
						f[i] = src[i*n+from]
					}
				}
				if bug == bugDropPopulation {
					f[q-1] = 0
				}
				var rho, jx, jy, jz float64
				for i := 0; i < q; i++ {
					fi := f[i]
					rho += fi
					c := d.C[i]
					jx += fi * float64(c[0])
					jy += fi * float64(c[1])
					jz += fi * float64(c[2])
				}
				invRho := 1.0 / rho
				d.EquilibriumAll(feq, rho, jx*invRho, jy*invRho, jz*invRho)
				for i := 0; i < q; i++ {
					if bug == bugFlipRelax {
						dst[i*n+idx] = math.FMA(invTau, f[i]-feq[i], f[i])
					} else {
						dst[i*n+idx] = math.FMA(-invTau, f[i]-feq[i], f[i])
					}
				}
			}
		}
	}
	l.SwapBuffers()
}

// shadowStepAA is the AA twin of the shadow kernel: the same BGK
// arithmetic applied IN PLACE on a single array, alternating between the
// two AA half-steps by step parity. Even steps gather like the pull
// kernel and scatter each relaxed population into the reversed-shifted
// slot (direction Opp[i] of the downstream neighbour); odd steps gather
// from the reversed slots of the cell itself and write back naturally.
// Written independently of core's AA kernels (own offsets, own slot
// arithmetic) so a planted — or real — swap bug in one cannot mask the
// same bug in the other. The per-cell gather-all-then-scatter order is
// sufficient for correctness: at either parity a cell's writes are read
// only by that cell until the next step.
func shadowStepAA(l *core.Lattice, bug shadowBug) {
	if !l.AA() {
		l.EnableAA() // step 0 is even phase: the layout is unchanged
	}
	d := l.Desc
	q := d.Q
	n := l.N
	src := l.Src()
	invTau := 1.0 / l.Tau
	var offs [core.MaxQ]int
	for i := 0; i < q; i++ {
		c := d.C[i]
		offs[i] = c[1]*l.AX*l.AZ + c[0]*l.AZ + c[2]
	}
	odd := l.Step()%2 == 1
	var fArr, feqArr [core.MaxQ]float64
	f, feq := fArr[:q], feqArr[:q]

	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				idx := l.Idx(x, y, z)
				if l.Flags[idx] != core.Fluid {
					continue
				}
				for i := 0; i < q; i++ {
					from := idx - offs[i]
					wall := l.Flags[from] == core.Wall || l.Flags[from] == core.MovingWall
					if !odd {
						// Even phase stores naturally: pull from the
						// upstream neighbour, bounce off walls in place.
						if wall {
							f[i] = src[d.Opp[i]*n+idx]
						} else {
							f[i] = src[i*n+from]
						}
					} else {
						// Odd phase: the even step parked this cell's
						// inbound populations in its own reversed slots
						// (and bounce values in the wall's natural slot).
						if wall {
							f[i] = src[i*n+from]
						} else {
							f[i] = src[d.Opp[i]*n+idx]
						}
					}
				}
				var rho, jx, jy, jz float64
				for i := 0; i < q; i++ {
					fi := f[i]
					rho += fi
					c := d.C[i]
					jx += fi * float64(c[0])
					jy += fi * float64(c[1])
					jz += fi * float64(c[2])
				}
				invRho := 1.0 / rho
				d.EquilibriumAll(feq, rho, jx*invRho, jy*invRho, jz*invRho)
				for i := 0; i < q; i++ {
					out := math.FMA(-invTau, f[i]-feq[i], f[i])
					if !odd {
						slot := d.Opp[i]
						if bug == bugAASwap {
							slot = i // forgets the direction reversal
						}
						src[slot*n+idx+offs[i]] = out
					} else {
						src[i*n+idx] = out
					}
				}
			}
		}
	}
	l.SetStep(l.Step() + 1)
}

// Normalized projects the case into the shadow kernel's subset: periodic
// boundaries, no forcing, no LES (dims, tau, steps, seed and obstacles
// are kept). Mutant oracles replay identically because the projection is
// deterministic.
func (c *Case) Normalized() *Case {
	n := c.clone()
	n.BC = BCPeriodic
	n.Force = [3]float64{}
	n.Smagorinsky = 0
	return n
}

// runShadow executes the (possibly buggy) shadow kernel on the
// normalized case and returns the macro field plus mass before/after.
func runShadow(c *Case, step func(l *core.Lattice)) (field *core.MacroField, m0, m1 float64, err error) {
	l, err := c.newLattice()
	if err != nil {
		return nil, 0, 0, err
	}
	m0 = l.TotalMass()
	c.advance(l, nil, c.Steps, step)
	return l.ComputeMacro(), m0, l.TotalMass(), nil
}

// checkShadow runs the conformance oracles against a shadow kernel and
// returns the first violation (nil = the kernel conforms, i.e. for a
// mutant the bug went UNDETECTED).
func checkShadow(c *Case, step func(l *core.Lattice)) error {
	nc := c.Normalized()
	want, err := nc.Reference()
	if err != nil {
		return skipf("reference: %v", err)
	}
	got, m0, m1, err := runShadow(nc, step)
	if err != nil {
		return skipf("shadow run: %v", err)
	}
	// Conservation oracle first: it is the cheaper and more physical
	// statement, and the mutation story depends on which layer fires.
	if tol := 1e-12 * math.Abs(m0); math.Abs(m1-m0) > tol || math.IsNaN(m1) {
		return fmt.Errorf("mass oracle: drift %.17g -> %.17g (|Δ|>%.3g)", m0, m1, tol)
	}
	if err := Compare(want, got, Exact); err != nil {
		return fmt.Errorf("differential oracle: %w", err)
	}
	return nil
}

// MutantOracles exposes each injected bug as a replayable oracle named
// "mutant/<bug>". These are excluded from RunSuite (they are supposed to
// fail); the self-test and the -replay path use them.
func MutantOracles() []Oracle {
	muts := Mutations()
	out := make([]Oracle, len(muts))
	for i, m := range muts {
		m := m
		out[i] = Oracle{
			Name:  "mutant/" + m.Name,
			Check: func(x *Ctx) error { return checkShadow(x.Case, m.Step) },
		}
	}
	return out
}

// MutantOracleNames lists the mutant oracle names.
func MutantOracleNames() []string {
	muts := Mutations()
	names := make([]string, len(muts))
	for i, m := range muts {
		names[i] = "mutant/" + m.Name
	}
	return names
}

// ShadowControl verifies the shadow kernel itself (no bug injected)
// conforms on a case — the control arm that keeps the mutation self-test
// honest: if the clean shadow kernel already failed, "mutant caught"
// would prove nothing.
func ShadowControl(c *Case) error {
	return checkShadow(c, func(l *core.Lattice) { shadowStep(l, bugNone) })
}

// Detection is the self-test outcome for one mutation.
type Detection struct {
	Mutation Mutation
	// Caught is the first generated case the oracles flagged.
	Caught *Case
	// Min is the shrunk reproduction; Replay its replay string.
	Min    *Case
	Replay string
	// Err is the violation on the shrunk case.
	Err error
}

// SelfTest proves every injected bug is caught: for each mutation it
// scans up to maxCases generated (normalized) scenarios until one trips
// an oracle, shrinks it, and re-runs the shrunk replay string standalone
// (ParseCase round trip included). Any undetected mutation is an error —
// the harness would be too weak to gate refactors.
func SelfTest(seed int64, maxCases int, logf func(format string, args ...any)) ([]Detection, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if maxCases <= 0 {
		maxCases = 10
	}
	var out []Detection
	for _, m := range Mutations() {
		det, err := detectMutation(m, seed, maxCases, logf)
		if err != nil {
			return out, err
		}
		out = append(out, det)
	}
	return out, nil
}

func detectMutation(m Mutation, seed int64, maxCases int, logf func(string, ...any)) (Detection, error) {
	name := "mutant/" + m.Name
	rng := newCaseRNG(seed)
	control := func(l *core.Lattice) { shadowStep(l, bugNone) }
	if m.Control != nil {
		control = m.Control
	}
	for i := 0; i < maxCases; i++ {
		c := GenerateCase(rng).Normalized()
		if err := checkShadow(c, control); err != nil {
			return Detection{}, fmt.Errorf("conform: clean shadow kernel fails control on %s: %w", c, err)
		}
		err := checkShadow(c, m.Step)
		if err == nil || IsSkip(err) {
			continue
		}
		logf("%s: caught by %v on case %d (%s); shrinking", name, err, i+1, c)
		min := Shrink(c, func(cand *Case) bool {
			e := checkShadow(cand, m.Step)
			return e != nil && !IsSkip(e)
		})
		replay := min.String()
		// The shrunk replay string must reproduce standalone: decode it
		// from scratch and rerun the oracle by name.
		rc, perr := ParseCase(replay)
		if perr != nil {
			return Detection{}, fmt.Errorf("conform: shrunk replay %q does not parse: %w", replay, perr)
		}
		rerr := RunOracle(name, rc)
		if rerr == nil || IsSkip(rerr) {
			return Detection{}, fmt.Errorf("conform: shrunk replay %q does not reproduce %s", replay, name)
		}
		logf("%s: minimal replay %q (%v)", name, replay, rerr)
		return Detection{Mutation: m, Caught: c, Min: min, Replay: replay, Err: rerr}, nil
	}
	return Detection{}, fmt.Errorf("conform: mutation %s went UNDETECTED over %d cases (seed %d) — the oracles are too weak",
		m.Name, maxCases, seed)
}
