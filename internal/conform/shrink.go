package conform

// Shrinking: a failing (case, oracle) pair is reduced to a minimal
// replayable case by greedy descent over a fixed candidate schedule. A
// candidate is accepted when it still validates AND still fails the same
// oracle; backend "cannot represent" skips count as non-failing, so the
// shrinker never walks out of a layout's domain (e.g. below 8 cells in x
// for the 8×1 decomposition — that backend simply skips and the shrink
// stops there).

// failsFn evaluates whether a candidate still reproduces the violation.
type failsFn func(c *Case) bool

// Shrink minimises a failing case under the predicate. It always returns
// a case for which fails is true (at worst the input itself).
func Shrink(c *Case, fails failsFn) *Case {
	cur := c.clone()
	// Budget caps pathological schedules; each accepted candidate
	// restarts the pass, so the loop terminates when a full pass makes
	// no progress.
	budget := 400
	for budget > 0 {
		improved := false
		for _, cand := range shrinkCandidates(cur) {
			budget--
			if budget <= 0 {
				break
			}
			if cand.Validate() != nil {
				continue
			}
			if !fails(cand) {
				continue
			}
			cur = cand
			improved = true
			break
		}
		if !improved {
			break
		}
	}
	return cur
}

func (c *Case) clone() *Case {
	cp := *c
	return &cp
}

// shrinkCandidates proposes simplifications of c, most aggressive first.
func shrinkCandidates(c *Case) []*Case {
	var out []*Case
	add := func(mut func(n *Case)) {
		n := c.clone()
		mut(n)
		if *n != *c {
			out = append(out, n)
		}
	}
	// Fewer steps dominates runtime and trace length.
	if c.Steps > 1 {
		add(func(n *Case) { n.Steps = 1 })
		add(func(n *Case) { n.Steps = c.Steps / 2 })
		add(func(n *Case) { n.Steps = c.Steps - 1 })
	}
	// Simpler physics.
	if c.Smagorinsky != 0 {
		add(func(n *Case) { n.Smagorinsky = 0 })
	}
	if c.Force != [3]float64{} {
		add(func(n *Case) { n.Force = [3]float64{} })
	}
	if c.Obst > 0 {
		add(func(n *Case) { n.Obst = 0 })
		add(func(n *Case) { n.Obst = c.Obst - 1 })
	}
	if c.BC != BCPeriodic {
		add(func(n *Case) { n.BC = BCPeriodic })
	}
	if c.Tau != 0.8 {
		add(func(n *Case) { n.Tau = 0.8 })
	}
	// Smaller grids, one axis at a time: halve toward 2, then decrement.
	dims := []struct {
		get func(*Case) int
		set func(*Case, int)
	}{
		{func(n *Case) int { return n.NX }, func(n *Case, v int) { n.NX = v }},
		{func(n *Case) int { return n.NY }, func(n *Case, v int) { n.NY = v }},
		{func(n *Case) int { return n.NZ }, func(n *Case, v int) { n.NZ = v }},
	}
	for _, d := range dims {
		v := d.get(c)
		if v > 2 {
			add(func(n *Case) { d.set(n, 2) })
			if v/2 >= 2 {
				add(func(n *Case) { d.set(n, v/2) })
			}
			add(func(n *Case) { d.set(n, v-1) })
		}
	}
	// A calmer seed often simplifies the obstacle mask and modes.
	if c.Seed != 1 {
		add(func(n *Case) { n.Seed = 1 })
	}
	return out
}
