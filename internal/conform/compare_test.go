package conform

import (
	"math"
	"testing"

	"sunwaylb/internal/core"
)

func TestULPDiff(t *testing.T) {
	one := 1.0
	next := math.Nextafter(one, 2)
	if d := ulpDiff(one, one); d != 0 {
		t.Fatalf("ulpDiff(1,1) = %d", d)
	}
	if d := ulpDiff(one, next); d != 1 {
		t.Fatalf("ulpDiff(1, next(1)) = %d", d)
	}
	if d := ulpDiff(-one, math.Nextafter(-one, 0)); d != 1 {
		t.Fatalf("negative-side ulpDiff = %d", d)
	}
	// Crossing zero counts the representable doubles in between.
	if d := ulpDiff(math.Copysign(0, -1), 0.0); d != 0 {
		t.Fatalf("ulpDiff(-0, +0) = %d", d)
	}
	if d := ulpDiff(math.NaN(), 1); d != math.MaxInt64 {
		t.Fatalf("NaN ulpDiff = %d", d)
	}
}

func TestToleranceWithin(t *testing.T) {
	if !Exact.within(3.25, 3.25) {
		t.Fatal("Exact rejects equal values")
	}
	if Exact.within(3.25, math.Nextafter(3.25, 4)) {
		t.Fatal("Exact admits a 1-ulp difference")
	}
	if !(Tolerance{MaxULP: 2}).within(3.25, math.Nextafter(3.25, 4)) {
		t.Fatal("MaxULP=2 rejects a 1-ulp difference")
	}
	if !Metamorphic.within(0.5, 0.5+5e-13) {
		t.Fatal("Metamorphic rejects 5e-13 absolute")
	}
	if Metamorphic.within(0.5, 0.5+5e-12) {
		t.Fatal("Metamorphic admits 5e-12 absolute")
	}
	if Metamorphic.within(1, math.NaN()) {
		t.Fatal("tolerance admits NaN")
	}
}

func field222(fill float64) *core.MacroField {
	n := 8
	m := &core.MacroField{NX: 2, NY: 2, NZ: 2,
		Rho: make([]float64, n), Ux: make([]float64, n),
		Uy: make([]float64, n), Uz: make([]float64, n)}
	for i := range m.Rho {
		m.Rho[i] = fill
	}
	return m
}

func TestCompareReportsWorstCell(t *testing.T) {
	want := field222(1)
	got := field222(1)
	got.Rho[want.Idx(1, 0, 1)] += 1e-3
	got.Ux[want.Idx(0, 1, 0)] = 0.5 // worst offender
	err := Compare(want, got, Exact)
	if err == nil {
		t.Fatal("Compare missed the mismatch")
	}
	mm, ok := err.(*Mismatch)
	if !ok {
		t.Fatalf("Compare returned %T, want *Mismatch", err)
	}
	if mm.Field != "ux" || mm.X != 0 || mm.Y != 1 || mm.Z != 0 {
		t.Fatalf("worst cell wrong: %+v", mm)
	}
	if mm.Count != 2 {
		t.Fatalf("out-of-tolerance count = %d, want 2", mm.Count)
	}
}

func TestCompareShapeAndNil(t *testing.T) {
	want := field222(1)
	if err := Compare(want, nil, Exact); err == nil {
		t.Fatal("nil field accepted")
	}
	other := &core.MacroField{NX: 1, NY: 2, NZ: 2,
		Rho: make([]float64, 4), Ux: make([]float64, 4),
		Uy: make([]float64, 4), Uz: make([]float64, 4)}
	if err := Compare(want, other, Exact); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestCompareCatchesNaN(t *testing.T) {
	want := field222(1)
	got := field222(1)
	got.Uy[3] = math.NaN()
	if err := Compare(want, got, Metamorphic); err == nil {
		t.Fatal("NaN accepted")
	}
}
