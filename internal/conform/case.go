// Package conform is the differential + metamorphic conformance harness
// of SunwayLB-Go: the executable statement of the repo's core invariant
// that every optimization stage (MPE baseline → CPE blocking → kernel
// fusion → on-the-fly halo exchange) and every backend (serial core,
// simulated Sunway CPE path, GPU node model, multi-rank decompositions)
// computes the *same flow* (PAPER §IV-C, Fig. 8).
//
// The harness has three layers:
//
//  1. Cross-implementation oracles: a seeded case generator produces small
//     but adversarial scenarios (grid shape, tau, boundary regimes,
//     obstacle masks, forcing, LES) and runs each through the whole
//     backend matrix, asserting bit-identical macroscopic fields against
//     the serial reference (or a documented ULP/absolute bound where an
//     implementation legitimately reorders float summation).
//  2. Metamorphic physics properties: stepping commutes with lattice
//     reflections, 90° rotations and periodic translations; mass and
//     momentum are conserved on periodic domains; the rest state is a
//     fixed point; checkpoint→restore→step equals uninterrupted stepping,
//     including under seeded fault plans.
//  3. Mutation sensitivity: known numerical bugs (flipped relaxation
//     sign, off-by-one halo pull, dropped population) are injected into a
//     shadow kernel and the suite asserts the oracles *catch* each one —
//     the harness's statistical power is itself under test.
//
// Failures shrink to a minimal case and are reported as a compact replay
// string (see ParseCase) that reproduces the violation standalone:
//
//	go run ./cmd/conform -replay 'v1;seed=7;grid=8x9x8;tau=0.62;steps=4;bc=periodic' -run 'swlb/full'
package conform

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// BC regimes. Each regime determines periodicity and the set of boundary
// conditions applied per step, identically across all backends.
const (
	// BCPeriodic wraps all three axes.
	BCPeriodic = "periodic"
	// BCLid is a lid-driven cavity: no-slip on five faces, a moving
	// no-slip lid at z+.
	BCLid = "lid"
	// BCChannel is an x-directed channel: velocity inlet at x−, pressure
	// outlet at x+, no-slip side walls in y, periodic in z.
	BCChannel = "channel"
)

// Case is one generated conformance scenario. Everything a backend needs
// (geometry, initial state, boundary regime) is derived deterministically
// from the fields, so the compact replay string reproduces the exact run.
type Case struct {
	// Seed drives the obstacle mask and the initial-condition modes.
	Seed int64
	// NX, NY, NZ are the global interior dimensions.
	NX, NY, NZ int
	// Tau is the LBGK relaxation time.
	Tau float64
	// Smagorinsky enables the LES subgrid model when > 0.
	Smagorinsky float64
	// Force is the Guo body-force density.
	Force [3]float64
	// Steps is the number of time steps each backend runs.
	Steps int
	// BC selects the boundary regime.
	BC string
	// Obst is the number of seeded obstacle boxes.
	Obst int
}

// newCaseRNG builds the deterministic generator stream for a seed.
func newCaseRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// GenerateCase draws a random scenario from the generator distribution.
// All float parameters are rounded to short decimals so replay strings
// stay compact and parse back to the identical value.
func GenerateCase(rng *rand.Rand) *Case {
	c := &Case{
		Seed:  rng.Int63n(1 << 31),
		NX:    8 + rng.Intn(5),
		NY:    8 + rng.Intn(5),
		NZ:    8 + rng.Intn(5),
		Tau:   round3(0.55 + 0.5*rng.Float64()),
		Steps: 3 + rng.Intn(4),
	}
	switch r := rng.Float64(); {
	case r < 0.6:
		c.BC = BCPeriodic
	case r < 0.8:
		c.BC = BCLid
	default:
		c.BC = BCChannel
	}
	c.Obst = rng.Intn(3)
	if c.BC == BCLid {
		c.Obst = rng.Intn(2)
	}
	if c.BC == BCPeriodic && rng.Float64() < 0.25 {
		c.Force = [3]float64{
			roundExp(2e-5 * (rng.Float64() - 0.5)),
			roundExp(2e-5 * (rng.Float64() - 0.5)),
			roundExp(2e-5 * (rng.Float64() - 0.5)),
		}
	}
	if rng.Float64() < 0.2 {
		c.Smagorinsky = round3(0.1 + 0.1*rng.Float64())
	}
	return c
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// roundExp keeps 3 significant digits so tiny force components survive a
// decimal round trip exactly.
func roundExp(v float64) float64 {
	s := strconv.FormatFloat(v, 'g', 3, 64)
	out, _ := strconv.ParseFloat(s, 64)
	return out
}

// Validate rejects degenerate cases (the shrinker proposes candidates
// through this gate).
func (c *Case) Validate() error {
	if c.NX < 2 || c.NY < 2 || c.NZ < 2 {
		return fmt.Errorf("conform: dimensions %dx%dx%d too small", c.NX, c.NY, c.NZ)
	}
	if c.Tau <= 0.5 {
		return fmt.Errorf("conform: tau %v must exceed 0.5", c.Tau)
	}
	if c.Steps < 1 {
		return fmt.Errorf("conform: steps %d must be positive", c.Steps)
	}
	switch c.BC {
	case BCPeriodic, BCLid, BCChannel:
	default:
		return fmt.Errorf("conform: unknown bc regime %q", c.BC)
	}
	if c.Obst < 0 {
		return fmt.Errorf("conform: negative obstacle count")
	}
	return nil
}

// String renders the case as the replay DSL (parseable by ParseCase).
func (c *Case) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v1;seed=%d;grid=%dx%dx%d;tau=%s;steps=%d;bc=%s",
		c.Seed, c.NX, c.NY, c.NZ, ftoa(c.Tau), c.Steps, c.BC)
	if c.Obst > 0 {
		fmt.Fprintf(&b, ";obst=%d", c.Obst)
	}
	if c.Force != [3]float64{} {
		fmt.Fprintf(&b, ";force=%s,%s,%s", ftoa(c.Force[0]), ftoa(c.Force[1]), ftoa(c.Force[2]))
	}
	if c.Smagorinsky > 0 {
		fmt.Fprintf(&b, ";smag=%s", ftoa(c.Smagorinsky))
	}
	return b.String()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseCase decodes a replay string produced by Case.String.
func ParseCase(s string) (*Case, error) {
	parts := strings.Split(strings.TrimSpace(s), ";")
	if len(parts) == 0 || parts[0] != "v1" {
		return nil, fmt.Errorf("conform: replay string must start with \"v1;\"")
	}
	c := &Case{BC: BCPeriodic}
	for _, p := range parts[1:] {
		if p == "" {
			continue
		}
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return nil, fmt.Errorf("conform: bad clause %q", p)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseInt(v, 10, 64)
		case "grid":
			dims := strings.Split(v, "x")
			if len(dims) != 3 {
				return nil, fmt.Errorf("conform: bad grid %q", v)
			}
			if c.NX, err = strconv.Atoi(dims[0]); err == nil {
				if c.NY, err = strconv.Atoi(dims[1]); err == nil {
					c.NZ, err = strconv.Atoi(dims[2])
				}
			}
		case "tau":
			c.Tau, err = strconv.ParseFloat(v, 64)
		case "steps":
			c.Steps, err = strconv.Atoi(v)
		case "bc":
			c.BC = v
		case "obst":
			c.Obst, err = strconv.Atoi(v)
		case "force":
			comps := strings.Split(v, ",")
			if len(comps) != 3 {
				return nil, fmt.Errorf("conform: bad force %q", v)
			}
			for i, cs := range comps {
				if c.Force[i], err = strconv.ParseFloat(cs, 64); err != nil {
					break
				}
			}
		case "smag":
			c.Smagorinsky, err = strconv.ParseFloat(v, 64)
		default:
			return nil, fmt.Errorf("conform: unknown key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("conform: clause %q: %w", p, err)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// box is one axis-aligned obstacle.
type box struct{ x0, y0, z0, x1, y1, z1 int }

func (b box) contains(x, y, z int) bool {
	return x >= b.x0 && x < b.x1 && y >= b.y0 && y < b.y1 && z >= b.z0 && z < b.z1
}

// obstacles derives the seeded obstacle boxes. They stay one cell away
// from every global face so inlets and lids are never blocked and the
// generator cannot wall off the whole domain.
func (c *Case) obstacles() []box {
	if c.Obst == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(c.Seed*2 + 1))
	boxes := make([]box, 0, c.Obst)
	for i := 0; i < c.Obst; i++ {
		bx := box{
			x0: 1 + rng.Intn(max(1, c.NX-3)),
			y0: 1 + rng.Intn(max(1, c.NY-3)),
			z0: 1 + rng.Intn(max(1, c.NZ-3)),
		}
		bx.x1 = min(c.NX-1, bx.x0+1+rng.Intn(3))
		bx.y1 = min(c.NY-1, bx.y0+1+rng.Intn(3))
		bx.z1 = min(c.NZ-1, bx.z0+1+rng.Intn(3))
		boxes = append(boxes, bx)
	}
	return boxes
}

// Walls returns the global obstacle predicate.
func (c *Case) Walls() func(gx, gy, gz int) bool {
	boxes := c.obstacles()
	if len(boxes) == 0 {
		return nil
	}
	return func(gx, gy, gz int) bool {
		for _, b := range boxes {
			if b.contains(gx, gy, gz) {
				return true
			}
		}
		return false
	}
}

// initModes are the smooth seeded initial-condition fields: a superposed
// pair of sine modes per macroscopic quantity.
type initModes struct {
	// one mode per field: rho, ux, uy, uz
	amp   [4]float64
	kx    [4]int
	ky    [4]int
	kz    [4]int
	phase [4]float64
}

func (c *Case) modes() initModes {
	rng := rand.New(rand.NewSource(c.Seed*2 + 2))
	var m initModes
	for i := 0; i < 4; i++ {
		m.amp[i] = 0.01 + 0.02*rng.Float64()
		if i == 0 {
			m.amp[i] = 0.005 + 0.005*rng.Float64() // density perturbation stays small
		}
		m.kx[i] = 1 + rng.Intn(2)
		m.ky[i] = 1 + rng.Intn(2)
		m.kz[i] = 1 + rng.Intn(2)
		m.phase[i] = 2 * math.Pi * rng.Float64()
	}
	return m
}

// Init returns the seeded smooth initial condition as a pure function of
// the global coordinates (every backend evaluates the identical floats).
func (c *Case) Init() func(gx, gy, gz int) (rho, ux, uy, uz float64) {
	m := c.modes()
	nx, ny, nz := float64(c.NX), float64(c.NY), float64(c.NZ)
	field := func(i, gx, gy, gz int) float64 {
		arg := 2*math.Pi*(float64(m.kx[i])*float64(gx)/nx+
			float64(m.ky[i])*float64(gy)/ny+
			float64(m.kz[i])*float64(gz)/nz) + m.phase[i]
		return m.amp[i] * math.Sin(arg)
	}
	return func(gx, gy, gz int) (rho, ux, uy, uz float64) {
		return 1 + field(0, gx, gy, gz),
			field(1, gx, gy, gz),
			field(2, gx, gy, gz),
			field(3, gx, gy, gz)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
