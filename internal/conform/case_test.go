package conform

import (
	"math/rand"
	"strings"
	"testing"
)

func TestGeneratedCasesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		c := GenerateCase(rng)
		if err := c.Validate(); err != nil {
			t.Fatalf("generated case %d invalid: %v (%s)", i, err, c)
		}
	}
}

func TestReplayRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		c := GenerateCase(rng)
		s := c.String()
		back, err := ParseCase(s)
		if err != nil {
			t.Fatalf("replay %q does not parse: %v", s, err)
		}
		if *back != *c {
			t.Fatalf("replay round trip changed the case:\n  in  %+v\n  out %+v\n  via %q", c, back, s)
		}
	}
}

func TestParseCaseErrors(t *testing.T) {
	bad := []string{
		"",
		"v2;seed=1;grid=8x8x8;tau=0.8;steps=1",
		"v1;grid=8x8;tau=0.8;steps=1",
		"v1;grid=8x8x8;tau=0.8;steps=1;bc=warp",
		"v1;grid=8x8x8;tau=0.4;steps=1",
		"v1;grid=8x8x8;tau=0.8;steps=0",
		"v1;grid=1x8x8;tau=0.8;steps=1",
		"v1;grid=8x8x8;tau=0.8;steps=1;mystery=3",
		"v1;grid=8x8x8;tau=0.8;steps=1;force=1,2",
		"v1;noequals",
	}
	for _, s := range bad {
		if _, err := ParseCase(s); err == nil {
			t.Errorf("ParseCase(%q) unexpectedly succeeded", s)
		}
	}
}

func TestParseCaseDefaults(t *testing.T) {
	c, err := ParseCase("v1;grid=8x9x10;tau=0.8;steps=2")
	if err != nil {
		t.Fatal(err)
	}
	if c.BC != BCPeriodic || c.Obst != 0 || c.Force != [3]float64{} || c.Smagorinsky != 0 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.NX != 8 || c.NY != 9 || c.NZ != 10 {
		t.Fatalf("grid wrong: %+v", c)
	}
}

func TestObstaclesStayOffGlobalFaces(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		c := GenerateCase(rng)
		walls := c.Walls()
		if walls == nil {
			continue
		}
		for y := 0; y < c.NY; y++ {
			for x := 0; x < c.NX; x++ {
				for z := 0; z < c.NZ; z++ {
					onFace := x == 0 || x == c.NX-1 || y == 0 || y == c.NY-1 || z == 0 || z == c.NZ-1
					if onFace && walls(x, y, z) {
						t.Fatalf("case %s: obstacle touches global face at (%d,%d,%d)", c, x, y, z)
					}
				}
			}
		}
	}
}

func TestInitIsPureFunctionOfCoordinates(t *testing.T) {
	c := &Case{Seed: 99, NX: 8, NY: 8, NZ: 8, Tau: 0.8, Steps: 1, BC: BCPeriodic}
	a, b := c.Init(), c.Init()
	for i := 0; i < 50; i++ {
		x, y, z := i%8, (i/2)%8, (i/3)%8
		r1, u1, v1, w1 := a(x, y, z)
		r2, u2, v2, w2 := b(x, y, z)
		if r1 != r2 || u1 != u2 || v1 != v2 || w1 != w2 {
			t.Fatalf("Init not deterministic at (%d,%d,%d)", x, y, z)
		}
	}
}

func TestStringMentionsOnlyActiveClauses(t *testing.T) {
	c := &Case{Seed: 5, NX: 8, NY: 8, NZ: 8, Tau: 0.8, Steps: 3, BC: BCPeriodic}
	s := c.String()
	for _, clause := range []string{"obst=", "force=", "smag="} {
		if strings.Contains(s, clause) {
			t.Errorf("inactive clause %q rendered in %q", clause, s)
		}
	}
}
