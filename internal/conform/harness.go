package conform

import (
	"fmt"
	"math/rand"
	"regexp"
	"time"
)

// Config drives one suite execution.
type Config struct {
	// Seed seeds the case generator (the whole run is deterministic in
	// it).
	Seed int64
	// Cases is the number of generated scenarios.
	Cases int
	// Run, if non-empty, is a regexp filtering oracle names (like go
	// test -run).
	Run string
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Failure is one oracle violation with its shrunk reproduction.
type Failure struct {
	// Oracle is the violated oracle's name.
	Oracle string
	// Orig is the originally generated failing case; Min is the shrunk
	// one. Min.String() is the replay string.
	Orig, Min *Case
	// Err is the violation reported on the shrunk case.
	Err error
}

// String renders the failure with its standalone reproduction line.
func (f Failure) String() string {
	return fmt.Sprintf("%s: %v\n  replay: -replay '%s' -run '%s'",
		f.Oracle, f.Err, f.Min, regexp.QuoteMeta(f.Oracle))
}

// Report summarises a suite execution.
type Report struct {
	Cases    int
	Oracles  int
	Checks   int
	Passed   int
	Skipped  int
	Failures []Failure
	Elapsed  time.Duration
}

// OK reports whether the suite found no violation.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// Summary is a one-line result for logs.
func (r *Report) Summary() string {
	return fmt.Sprintf("conform: %d cases × %d oracles: %d checks, %d passed, %d skipped, %d FAILED (%.1fs)",
		r.Cases, r.Oracles, r.Checks, r.Passed, r.Skipped, len(r.Failures), r.Elapsed.Seconds())
}

// safeCheck runs an oracle, converting a panic into a violation (a
// panicking backend must shrink like any other failure, not kill the
// harness).
func safeCheck(o Oracle, x *Ctx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return o.Check(x)
}

// RunSuite generates Config.Cases scenarios and runs every (matching)
// oracle on each, shrinking failures to minimal replayable cases. The
// returned error covers configuration problems only; violations are in
// the report.
func RunSuite(cfg Config) (*Report, error) {
	if cfg.Cases <= 0 {
		cfg.Cases = 25
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var filter *regexp.Regexp
	if cfg.Run != "" {
		var err error
		if filter, err = regexp.Compile(cfg.Run); err != nil {
			return nil, fmt.Errorf("conform: bad -run pattern: %w", err)
		}
	}
	all := Oracles()
	oracles := all[:0:0]
	for _, o := range all {
		if filter == nil || filter.MatchString(o.Name) {
			oracles = append(oracles, o)
		}
	}
	if len(oracles) == 0 {
		return nil, fmt.Errorf("conform: -run %q matches no oracle (have %v)", cfg.Run, OracleNames())
	}

	start := time.Now()
	rep := &Report{Cases: cfg.Cases, Oracles: len(oracles)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Cases; i++ {
		c := GenerateCase(rng)
		logf("case %d/%d: %s", i+1, cfg.Cases, c)
		x := &Ctx{Case: c}
		for _, o := range oracles {
			err := safeCheck(o, x)
			rep.Checks++
			switch {
			case err == nil:
				rep.Passed++
			case IsSkip(err):
				rep.Skipped++
			default:
				logf("  FAIL %s: %v (shrinking)", o.Name, err)
				f := shrinkFailure(o, c)
				logf("  min: %s", f.Min)
				rep.Failures = append(rep.Failures, f)
			}
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// shrinkFailure minimises the failing case for one oracle.
func shrinkFailure(o Oracle, c *Case) Failure {
	fails := func(cand *Case) bool {
		err := safeCheck(o, &Ctx{Case: cand})
		return err != nil && !IsSkip(err)
	}
	min := Shrink(c, fails)
	return Failure{
		Oracle: o.Name,
		Orig:   c,
		Min:    min,
		Err:    safeCheck(o, &Ctx{Case: min}),
	}
}

// RunOracle executes one oracle (by exact name, mutant oracles included)
// against a case — the replay entry point.
func RunOracle(name string, c *Case) error {
	for _, o := range AllOracles() {
		if o.Name == name {
			return safeCheck(o, &Ctx{Case: c})
		}
	}
	return fmt.Errorf("conform: unknown oracle %q (have %v)", name, append(OracleNames(), MutantOracleNames()...))
}

// AllOracles is the replayable universe: the conformance suite plus the
// mutation-sensitivity shadow kernels (which are expected to fail — they
// exist so the self-test can prove the suite catches real bugs).
func AllOracles() []Oracle {
	return append(Oracles(), MutantOracles()...)
}
