package athread

import (
	"testing"

	"sunwaylb/internal/sunway"
)

// TestEmptyKernelJoin: spawning no work is legal, costs zero simulated
// time, and leaves the env reusable — the degenerate case of the
// spawn/compute/join loop when a rank owns no interior cells.
func TestEmptyKernelJoin(t *testing.T) {
	e := Init(sunway.TestChip(4, 1024))
	if err := e.Spawn(func(p *sunway.CPE) {}); err != nil {
		t.Fatal(err)
	}
	elapsed, err := e.Join()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Errorf("empty kernel elapsed = %v, want 0", elapsed)
	}
	// The env accepts the next kernel after an empty one.
	if err := e.Spawn(func(p *sunway.CPE) { p.Compute(100, 1) }); err != nil {
		t.Fatal(err)
	}
	if elapsed, err = e.Join(); err != nil || elapsed <= 0 {
		t.Fatalf("follow-up kernel: elapsed=%v err=%v", elapsed, err)
	}
}

// TestJoinPropagatesKernelPanic: a CPE trap inside a spawned kernel must
// not kill the spawning goroutine silently or crash the process from a
// helper goroutine — it re-surfaces as a panic at Join, on the MPE side,
// with the original value. Other CPEs blocked at the barrier unwind.
func TestJoinPropagatesKernelPanic(t *testing.T) {
	e := Init(sunway.TestChip(4, 1024))
	if err := e.Spawn(func(p *sunway.CPE) {
		if p.ID == 1 {
			panic("ldm fault")
		}
		p.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	got := func() (r any) {
		defer func() { r = recover() }()
		_, _ = e.Join()
		return nil
	}()
	if got != "ldm fault" {
		t.Fatalf("Join propagated %v, want the kernel's panic value", got)
	}
	// Consuming the panic clears the in-flight slot: a fresh spawn works.
	if err := e.Spawn(func(p *sunway.CPE) {}); err != nil {
		t.Fatalf("env unusable after a propagated panic: %v", err)
	}
	if _, err := e.Join(); err != nil {
		t.Fatal(err)
	}
}

// TestRunSyncPropagatesPanic: the synchronous path propagates directly.
func TestRunSyncPropagatesPanic(t *testing.T) {
	e := Init(sunway.TestChip(2, 1024))
	got := func() (r any) {
		defer func() { r = recover() }()
		e.RunSync(func(p *sunway.CPE) { panic("sync trap") })
		return nil
	}()
	if got != "sync trap" {
		t.Fatalf("RunSync propagated %v", got)
	}
	if e.RunSync(func(p *sunway.CPE) {}) != 0 {
		t.Error("empty RunSync after panic should cost zero time")
	}
}
