// Package athread mirrors the programming model of the Sunway Athread
// library (§IV-A: "a specialized lightweight thread library designed
// specifically for Sunway Supercomputers"): the MPE-side code initialises
// the CPE cluster, spawns a kernel on all CPEs, continues with its own
// work, and joins. On top of internal/sunway it gives SunwayLB kernels the
// same spawn/join structure as the original code.
package athread

import (
	"fmt"
	"sync"

	"sunwaylb/internal/sunway"
)

// Env is the MPE-side handle on a CPE cluster, the analogue of the
// athread_init/athread_halt lifetime.
type Env struct {
	cg     *sunway.CoreGroup
	mu     sync.Mutex
	active chan runResult
}

// runResult carries a finished kernel's outcome from the spawned
// goroutine back to Join: either a simulated elapsed time or the panic
// value the kernel died with.
type runResult struct {
	elapsed  float64
	panicVal any
	panicked bool
}

// Init prepares the CPE cluster of one core group for kernel spawning.
func Init(spec sunway.ChipSpec) *Env {
	return &Env{cg: sunway.NewCoreGroup(spec)}
}

// CoreGroup exposes the underlying simulator (for counters and clocks).
func (e *Env) CoreGroup() *sunway.CoreGroup { return e.cg }

// Spawn launches the kernel asynchronously on all CPEs (athread_spawn).
// The MPE keeps executing — that concurrency is what the on-the-fly halo
// exchange (Fig. 6(2)) and MPE/CPE collaboration (Fig. 9(2)) exploit.
// Spawn returns an error if a kernel is already in flight.
func (e *Env) Spawn(kernel func(p *sunway.CPE)) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.active != nil {
		return fmt.Errorf("athread: kernel already spawned; join it first")
	}
	res := make(chan runResult, 1)
	e.active = res
	go func() {
		defer func() {
			if r := recover(); r != nil {
				res <- runResult{panicVal: r, panicked: true}
			}
		}()
		res <- runResult{elapsed: e.cg.Run(kernel)}
	}()
	return nil
}

// Join waits for the spawned kernel (athread_join) and returns its
// simulated elapsed time on the CPE cluster. If the kernel panicked on
// any CPE, Join re-raises that panic on the MPE goroutine — the spawned
// work's failure surfaces where the join happens, as with a trapped CPE
// on the real machine.
func (e *Env) Join() (float64, error) {
	e.mu.Lock()
	done := e.active
	e.mu.Unlock()
	if done == nil {
		return 0, fmt.Errorf("athread: no kernel in flight")
	}
	res := <-done
	e.mu.Lock()
	e.active = nil
	e.mu.Unlock()
	if res.panicked {
		panic(res.panicVal)
	}
	return res.elapsed, nil
}

// RunSync is the common spawn-then-join pattern.
func (e *Env) RunSync(kernel func(p *sunway.CPE)) float64 {
	t := e.cg.Run(kernel)
	return t
}
