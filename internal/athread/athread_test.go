package athread

import (
	"sync/atomic"
	"testing"

	"sunwaylb/internal/sunway"
)

func TestSpawnJoin(t *testing.T) {
	e := Init(sunway.TestChip(4, 64*1024))
	var n atomic.Int64
	if err := e.Spawn(func(p *sunway.CPE) {
		n.Add(1)
		p.Compute(1e4, 1)
	}); err != nil {
		t.Fatal(err)
	}
	elapsed, err := e.Join()
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 4 {
		t.Errorf("kernel ran on %d CPEs, want 4", n.Load())
	}
	if elapsed <= 0 {
		t.Errorf("elapsed = %v, want > 0", elapsed)
	}
}

func TestDoubleSpawnRejected(t *testing.T) {
	e := Init(sunway.TestChip(2, 1024))
	block := make(chan struct{})
	if err := e.Spawn(func(p *sunway.CPE) { <-block }); err != nil {
		t.Fatal(err)
	}
	if err := e.Spawn(func(p *sunway.CPE) {}); err == nil {
		t.Error("second Spawn must fail while a kernel is in flight")
	}
	close(block)
	if _, err := e.Join(); err != nil {
		t.Fatal(err)
	}
	// After join, spawning works again.
	if err := e.Spawn(func(p *sunway.CPE) {}); err != nil {
		t.Fatalf("spawn after join: %v", err)
	}
	if _, err := e.Join(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinWithoutSpawn(t *testing.T) {
	e := Init(sunway.TestChip(1, 1024))
	if _, err := e.Join(); err == nil {
		t.Error("Join without Spawn must fail")
	}
}

// TestMPEOverlapsCPE: the MPE-side goroutine really runs concurrently with
// the spawned kernel — the mechanism behind the on-the-fly halo exchange.
func TestMPEOverlapsCPE(t *testing.T) {
	e := Init(sunway.TestChip(2, 1024))
	cpeStarted := make(chan struct{})
	mpeDone := make(chan struct{})
	var once sync0
	if err := e.Spawn(func(p *sunway.CPE) {
		once.Do(func() { close(cpeStarted) })
		<-mpeDone // CPEs wait for the MPE's "communication"
	}); err != nil {
		t.Fatal(err)
	}
	<-cpeStarted
	// MPE work happens here while the kernel is live.
	close(mpeDone)
	if _, err := e.Join(); err != nil {
		t.Fatal(err)
	}
}

// sync0 is a tiny once-guard without importing sync for a single use.
type sync0 struct{ done atomic.Bool }

func (s *sync0) Do(f func()) {
	if s.done.CompareAndSwap(false, true) {
		f()
	}
}

func TestRunSync(t *testing.T) {
	e := Init(sunway.TestChip(2, 64*1024))
	elapsed := e.RunSync(func(p *sunway.CPE) { p.Compute(1e5, 1) })
	if elapsed <= 0 {
		t.Errorf("elapsed = %v", elapsed)
	}
	if e.CoreGroup().Counters.Flops != 2e5 {
		t.Errorf("flops = %d, want 2e5", e.CoreGroup().Counters.Flops)
	}
}
