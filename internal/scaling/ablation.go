package scaling

import (
	"fmt"
	"math"

	"sunwaylb/internal/perf"
	"sunwaylb/internal/sunway"
)

// This file quantifies the design choices the paper argues for in prose:
// the 2-D xy decomposition over 1-D and 3-D (§IV-C-1), the long contiguous
// z-runs for DMA efficiency (§IV-C-2, the 64×3×70 blocking), and the
// on-the-fly halo exchange (§IV-C-1, "approximately 10%").

// DecompPoint is one decomposition alternative evaluated on a fixed mesh
// and rank count.
type DecompPoint struct {
	Name       string
	PX, PY, PZ int
	// Feasible is false when the scheme cannot expose the requested
	// parallelism on this mesh (the paper's argument against 1-D).
	Feasible bool
	Reason   string
	// BNX, BNY, BNZ is the per-rank block.
	BNX, BNY, BNZ int
	// Neighbors is the communication fan-out.
	Neighbors int
	// HaloCells is the per-rank halo-exchange volume in cells.
	HaloCells int64
	// RunLen is the contiguous z-run length the DMA sees.
	RunLen int
	// StepTime is the modelled distributed step time.
	StepTime float64
}

// StepTime3D extends the 2-D cost model with a z split: z faces join the
// exchange and, more importantly, the per-rank z extent caps the DMA run
// length, degrading the memory efficiency of every cell update.
func (m Model) StepTime3D(bnx, bny, bnz, px, py, pz int) float64 {
	ranks := px * py * pz
	kernel := m.Kernel
	cgT := CGTime(m.Spec, bnx, bny, bnz, kernel) // CGTime caps runLen at bnz

	supernodes := (ranks + m.Net.RanksPerSupernode - 1) / m.Net.RanksPerSupernode
	contention := 1 + m.ContentionBeta*math.Log(math.Max(1, float64(supernodes)))
	interBW := m.Net.InterBandwidth / contention
	crossFrac := math.Min(1, 4*float64(px*pz)/float64(m.Net.RanksPerSupernode))
	wire := func(bytes int64, cross float64) float64 {
		intra := m.Net.IntraLatency + float64(bytes)/m.Net.IntraBandwidth
		inter := m.Net.InterLatency + float64(bytes)/interBW
		return cross*inter + (1-cross)*intra
	}
	haloT := 0.0
	inject := 0.0
	addFace := func(cells int64, cross float64, count int) {
		if cells <= 0 || count == 0 {
			return
		}
		haloT = math.Max(haloT, wire(cells*popBytes, cross))
		inject += float64(count) * m.Net.SoftwareOverhead
	}
	if px > 1 {
		addFace(int64(bny)*int64(bnz), 0, 2)
	}
	if py > 1 {
		addFace(int64(bnx)*int64(bnz), crossFrac, 2)
	}
	if pz > 1 {
		addFace(int64(bnx)*int64(bny), crossFrac, 2)
	}
	// Edge/corner messages: up to 26 neighbours in 3-D; charge the
	// injection overhead of the remaining neighbours with tiny payloads.
	extraNbrs := 0
	switch {
	case px > 1 && py > 1 && pz > 1:
		extraNbrs = 26 - 6
	case (px > 1 && py > 1) || (py > 1 && pz > 1) || (px > 1 && pz > 1):
		extraNbrs = 8 - 4
	}
	inject += float64(extraNbrs) * m.Net.SoftwareOverhead
	haloT += inject

	jitter := m.JitterSigma * math.Sqrt(2*math.Log(math.Max(2, float64(ranks))))
	sync := m.Net.AllreduceTime(ranks)
	if !m.OnTheFly {
		return haloT + cgT + sync + jitter
	}
	innerFrac := 1.0
	if bnx > 2 && bny > 2 && bnz > 2 {
		innerFrac = float64((bnx-2)*(bny-2)*(bnz-2)) / float64(bnx*bny*bnz)
	} else if bnx > 2 && bny > 2 {
		innerFrac = float64((bnx-2)*(bny-2)) / float64(bnx*bny)
	}
	innerT := cgT * innerFrac
	bndT := cgT * (1 - innerFrac)
	return math.Max(innerT, haloT) + bndT + sync + jitter
}

// DecompositionAblation evaluates 1-D, 2-D and 3-D decompositions of a
// gnx×gny×gnz mesh over the given rank count (the §IV-C-1 trade-off).
func (m Model) DecompositionAblation(gnx, gny, gnz, ranks int) []DecompPoint {
	var out []DecompPoint

	// 1-D along x.
	p := DecompPoint{Name: "1-D (x slabs)", PX: ranks, PY: 1, PZ: 1, Neighbors: 2}
	if gnx < ranks {
		p.Feasible = false
		p.Reason = fmt.Sprintf("only %d cells along x for %d ranks", gnx, ranks)
	} else {
		p.Feasible = true
		p.BNX, p.BNY, p.BNZ = ceilDiv(gnx, ranks), gny, gnz
		p.HaloCells = 2 * int64(p.BNY) * int64(p.BNZ)
		p.RunLen = minInt(70, p.BNZ)
		p.StepTime = m.StepTime3D(p.BNX, p.BNY, p.BNZ, ranks, 1, 1)
	}
	out = append(out, p)

	// 2-D in xy (the paper's scheme).
	px, py := balancedFactor2(ranks, gnx, gny)
	p2 := DecompPoint{Name: "2-D (xy, full z)", PX: px, PY: py, PZ: 1, Neighbors: 8, Feasible: true}
	p2.BNX, p2.BNY, p2.BNZ = ceilDiv(gnx, px), ceilDiv(gny, py), gnz
	p2.HaloCells = 2*(int64(p2.BNY)*int64(p2.BNZ)+int64(p2.BNX)*int64(p2.BNZ)) + 4*int64(p2.BNZ)
	p2.RunLen = minInt(70, p2.BNZ)
	p2.StepTime = m.StepTime(p2.BNX, p2.BNY, p2.BNZ, px, py)
	out = append(out, p2)

	// 3-D: a generic near-cubic process grid (what MPI_Dims_create
	// produces), the shape a solver picks when it does not reason about
	// the memory system. A mesh-aware 3-D factoriser would degenerate to
	// the 2-D answer on thin-z meshes — which is precisely the paper's
	// scheme.
	px3, py3, pz3 := nearCubicFactor3(ranks)
	p3 := DecompPoint{Name: "3-D (xyz)", PX: px3, PY: py3, PZ: pz3, Neighbors: 26, Feasible: true}
	p3.BNX, p3.BNY, p3.BNZ = ceilDiv(gnx, px3), ceilDiv(gny, py3), ceilDiv(gnz, pz3)
	p3.HaloCells = 2 * (int64(p3.BNY)*int64(p3.BNZ) + int64(p3.BNX)*int64(p3.BNZ) + int64(p3.BNX)*int64(p3.BNY))
	p3.RunLen = minInt(70, p3.BNZ)
	p3.StepTime = m.StepTime3D(p3.BNX, p3.BNY, p3.BNZ, px3, py3, pz3)
	out = append(out, p3)
	return out
}

// balancedFactor2 picks the px·py = n factorisation minimising the halo
// surface for the mesh aspect ratio.
func balancedFactor2(n, gnx, gny int) (px, py int) {
	best := math.Inf(1)
	for p := 1; p <= n; p++ {
		if n%p != 0 {
			continue
		}
		q := n / p
		cost := float64(gnx)/float64(p) + float64(gny)/float64(q)
		if cost < best {
			best = cost
			px, py = p, q
		}
	}
	return
}

// nearCubicFactor3 factors n into the px ≥ py ≥ pz triple closest to a
// cube (MPI_Dims_create style); pz gets the smallest factor, which is the
// most charitable assignment for the 3-D scheme on thin-z meshes.
func nearCubicFactor3(n int) (px, py, pz int) {
	best := math.Inf(1)
	px, py, pz = n, 1, 1
	for p := 1; p*p*p <= n; p++ {
		if n%p != 0 {
			continue
		}
		rem := n / p
		for q := p; q*q <= rem; q++ {
			if rem%q != 0 {
				continue
			}
			r := rem / q
			spread := float64(r) / float64(p)
			if spread < best {
				best = spread
				px, py, pz = r, q, p
			}
		}
	}
	return
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BlockLengthPoint is one entry of the z-run-length sweep.
type BlockLengthPoint struct {
	BZ             int
	Rate           perf.LUPS
	BWUtil         float64
	LDMFitsSW26010 bool
}

// BlockLengthSweep quantifies the §IV-C-2 blocking choice: the per-CG rate
// as a function of the contiguous z-run length, with the 64 KB LDM
// feasibility limit of the SW26010 marked. Short runs drown in DMA
// descriptor startup; long runs stop fitting the LDM.
func (m Model) BlockLengthSweep(bzs []int) []BlockLengthPoint {
	out := make([]BlockLengthPoint, 0, len(bzs))
	for _, bz := range bzs {
		kc := m.Kernel
		kc.BZ = bz
		r := CGRate(m.Spec, 500, 700, 7000, kc) // deep-z block so bz is the binding run length
		// Kernel LDM footprint: runs + out, double-buffered (async).
		need := (4*19*bz + 2*19) * 8
		out = append(out, BlockLengthPoint{
			BZ:             bz,
			Rate:           r,
			BWUtil:         perf.BandwidthUtilization(r, m.Spec.DMABandwidth),
			LDMFitsSW26010: need <= 64*1024,
		})
	}
	return out
}

// OnTheFlyPoint compares the overlapped and sequential exchange at one
// block size.
type OnTheFlyPoint struct {
	BlockX, BlockY int
	Sequential     float64
	OnTheFly       float64
	Gain           float64
}

// OnTheFlySweep measures the §IV-C-1 on-the-fly gain across per-rank block
// sizes at full machine scale: the smaller the block, the larger the
// communication fraction and the bigger the benefit of hiding it.
func (m Model) OnTheFlySweep(blocks [][2]int, bnz, px, py int) []OnTheFlyPoint {
	seq := m
	seq.OnTheFly = false
	ovl := m
	ovl.OnTheFly = true
	out := make([]OnTheFlyPoint, 0, len(blocks))
	for _, b := range blocks {
		ts := seq.StepTime(b[0], b[1], bnz, px, py)
		to := ovl.StepTime(b[0], b[1], bnz, px, py)
		out = append(out, OnTheFlyPoint{
			BlockX: b[0], BlockY: b[1],
			Sequential: ts, OnTheFly: to,
			Gain: ts/to - 1,
		})
	}
	return out
}

// AoSPenalty quantifies the §IV-A layout argument: with an
// array-of-structures layout the 19 populations a pull gathers live in 19
// different cell records, so every load is its own scattered DMA
// descriptor with no contiguous z-run to amortise the startup over. The
// return value is the SoA/AoS per-CG rate ratio ("resulting in large
// amount of random memory accesses and frequent DMA startups").
func AoSPenalty(spec sunway.ChipSpec) (soa, aos perf.LUPS, ratio float64) {
	soa = CGRate(spec, 500, 700, 100, FullOpt())
	// AoS: 19 scattered 8 B loads + 19 scattered stores (write-allocate)
	// per cell, each paying the full descriptor startup.
	perCell := 19*(8+spec.DMAStartupBytes) +
		19*(8*spec.StoreWriteAllocate+spec.DMAStartupBytes)
	aos = perf.LUPS(spec.DMABandwidth / perCell)
	return soa, aos, float64(soa) / float64(aos)
}

// MappingPoint compares process-to-supernode mapping strategies.
type MappingPoint struct {
	Name string
	// XCross, YCross are the fractions of x/y halo messages that cross
	// supernode boundaries.
	XCross, YCross float64
	// StepTime is the modelled step under that mapping.
	StepTime float64
}

// MappingAblation quantifies an extension the paper leaves implicit: how
// ranks are placed onto supernodes. Row-major placement (the default)
// keeps x-neighbours together but sends most y messages across the fat
// tree once px approaches the supernode size; tiled placement folds a
// √S×√S patch of the process grid into each supernode, making both
// neighbour directions mostly local at the cost of a more complex
// launcher. The step times use the Fig. 14 cylinder endpoint block.
func (m Model) MappingAblation(bnx, bny, bnz, px, py int) []MappingPoint {
	ranks := px * py
	supernodes := (ranks + m.Net.RanksPerSupernode - 1) / m.Net.RanksPerSupernode
	contention := 1 + m.ContentionBeta*math.Log(math.Max(1, float64(supernodes)))
	interBW := m.Net.InterBandwidth / contention

	eval := func(name string, xCross, yCross float64) MappingPoint {
		wire := func(bytes int64, cross float64) float64 {
			intra := m.Net.IntraLatency + float64(bytes)/m.Net.IntraBandwidth
			inter := m.Net.InterLatency + float64(bytes)/interBW
			return cross*inter + (1-cross)*intra
		}
		haloT := math.Max(
			wire(int64(bny)*int64(bnz)*popBytes, xCross),
			wire(int64(bnx)*int64(bnz)*popBytes, yCross))
		haloT += 8 * m.Net.SoftwareOverhead
		cgT := CGTime(m.Spec, bnx, bny, bnz, m.Kernel)
		innerFrac := 1.0
		if bnx > 2 && bny > 2 {
			innerFrac = float64((bnx-2)*(bny-2)) / float64(bnx*bny)
		}
		t := math.Max(cgT*innerFrac, haloT) + cgT*(1-innerFrac) +
			m.Net.AllreduceTime(ranks) +
			m.JitterSigma*math.Sqrt(2*math.Log(math.Max(2, float64(ranks))))
		return MappingPoint{Name: name, XCross: xCross, YCross: yCross, StepTime: t}
	}

	s := float64(m.Net.RanksPerSupernode)
	// Row-major: x-neighbours adjacent (cross ≈ 1/S), y-neighbours px
	// apart (the model's default heuristic).
	rowMajor := eval("row-major", 1/s, math.Min(1, 4*float64(px)/s))
	// Tiled: a √S×√S patch per supernode; a neighbour leaves the patch
	// with probability ≈ 1/√S in each direction.
	side := math.Sqrt(s)
	tiled := eval("tiled √S×√S", 1/side, 1/side)
	return []MappingPoint{rowMajor, tiled}
}
