package scaling

import (
	"testing"

	"sunwaylb/internal/sunway"
)

// TestDecompositionAblation encodes the paper's §IV-C-1 argument as
// numbers: 1-D cannot expose 160000-way parallelism on the weak-scaling
// mesh; 2-D beats 3-D because splitting z shortens the DMA runs and adds
// fan-out.
func TestDecompositionAblation(t *testing.T) {
	m := TaihuLightModel()
	// The Fig. 13 global mesh at 160000 CGs.
	pts := m.DecompositionAblation(500*400, 700*400, 100, 160000)
	if len(pts) != 3 {
		t.Fatalf("%d schemes, want 3", len(pts))
	}
	byName := map[string]DecompPoint{}
	for _, p := range pts {
		byName[p.Name] = p
	}
	d1 := byName["1-D (x slabs)"]
	d2 := byName["2-D (xy, full z)"]
	d3 := byName["3-D (xyz)"]
	if !d1.Feasible {
		t.Errorf("1-D on the 200000-cell x axis is feasible for 160000 ranks (got infeasible: %s)", d1.Reason)
	}
	if !d2.Feasible || !d3.Feasible {
		t.Fatal("2-D and 3-D must be feasible")
	}
	// 1-D slabs have enormous per-rank halo surface compared to 2-D.
	if d1.Feasible && d1.HaloCells < 10*d2.HaloCells {
		t.Errorf("1-D halo (%d cells) should dwarf 2-D halo (%d cells)", d1.HaloCells, d2.HaloCells)
	}
	// 2-D must win on step time.
	if d2.StepTime >= d3.StepTime {
		t.Errorf("2-D (%.4f s) must beat 3-D (%.4f s)", d2.StepTime, d3.StepTime)
	}
	if d1.Feasible && d2.StepTime >= d1.StepTime {
		t.Errorf("2-D (%.4f s) must beat 1-D (%.4f s)", d2.StepTime, d1.StepTime)
	}
	// 3-D shortens the DMA runs (z split).
	if d3.RunLen >= d2.RunLen {
		t.Errorf("3-D run length (%d) should be shorter than 2-D's (%d)", d3.RunLen, d2.RunLen)
	}
	if d2.Neighbors != 8 || d3.Neighbors != 26 || d1.Neighbors != 2 {
		t.Error("neighbour counts wrong")
	}
	t.Logf("1-D: halo=%d cells step=%.4fs | 2-D: halo=%d step=%.4fs | 3-D: halo=%d runLen=%d step=%.4fs",
		d1.HaloCells, d1.StepTime, d2.HaloCells, d2.StepTime, d3.HaloCells, d3.RunLen, d3.StepTime)
}

// TestDecomposition1DInfeasibleOnNarrowMesh: on the paper's own framing
// ("the x or y dimension usually has less than 1000 elements") 1-D cannot
// serve 160000 ranks.
func TestDecomposition1DInfeasibleOnNarrowMesh(t *testing.T) {
	m := TaihuLightModel()
	pts := m.DecompositionAblation(1000, 280000, 100, 160000)
	if pts[0].Feasible {
		t.Error("1-D over a 1000-cell axis must be infeasible for 160000 ranks")
	}
	if pts[0].Reason == "" {
		t.Error("infeasibility must carry a reason")
	}
}

// TestBlockLengthSweep: the per-CG rate grows with the z-run length and
// saturates; bz=70 sits near the knee and still fits the 64 KB LDM with
// double buffering, while much longer runs do not — the paper's 64×3×70
// choice.
func TestBlockLengthSweep(t *testing.T) {
	m := TaihuLightModel()
	pts := m.BlockLengthSweep([]int{4, 8, 16, 35, 70, 140, 512})
	for i := 1; i < len(pts); i++ {
		if pts[i].Rate < pts[i-1].Rate {
			t.Errorf("rate must be non-decreasing in run length: bz=%d %.1f < bz=%d %.1f",
				pts[i].BZ, pts[i].Rate.MLUPS(), pts[i-1].BZ, pts[i-1].Rate.MLUPS())
		}
	}
	var at70, at140, at512, at8 BlockLengthPoint
	for _, p := range pts {
		switch p.BZ {
		case 8:
			at8 = p
		case 70:
			at70 = p
		case 140:
			at140 = p
		case 512:
			at512 = p
		}
	}
	if !at70.LDMFitsSW26010 {
		t.Error("bz=70 must fit the 64 KB LDM (the paper uses it)")
	}
	if at140.LDMFitsSW26010 || at512.LDMFitsSW26010 {
		t.Error("bz=140 and bz=512 must not fit the 64 KB LDM with double buffering")
	}
	// bz=70 is thus the largest feasible run in the sweep — the paper's
	// choice — and captures most of the asymptotic rate; bz=8 does not.
	if at70.Rate < at512.Rate*0.80 {
		t.Errorf("bz=70 (%.1f MLUPS) should reach ≥80%% of bz=512 (%.1f)",
			at70.Rate.MLUPS(), at512.Rate.MLUPS())
	}
	if at8.Rate > at512.Rate*0.70 {
		t.Errorf("bz=8 (%.1f MLUPS) should clearly lag bz=512 (%.1f): startup overhead",
			at8.Rate.MLUPS(), at512.Rate.MLUPS())
	}
	t.Logf("bz=8: %.1f MLUPS, bz=70: %.1f MLUPS (largest LDM-feasible), bz=512: %.1f MLUPS (no LDM fit)",
		at8.Rate.MLUPS(), at70.Rate.MLUPS(), at512.Rate.MLUPS())
}

// TestOnTheFlySweep: the overlap gain grows as blocks shrink, reaching the
// paper's ≈10% ballpark for communication-visible configurations.
func TestOnTheFlySweep(t *testing.T) {
	m := TaihuLightModel()
	pts := m.OnTheFlySweep([][2]int{{500, 700}, {125, 175}, {64, 64}, {32, 32}}, 100, 400, 400)
	for i := 1; i < len(pts); i++ {
		if pts[i].Gain < pts[i-1].Gain-1e-9 {
			t.Errorf("gain must grow as blocks shrink: %v then %v", pts[i-1], pts[i])
		}
	}
	for _, p := range pts {
		if p.OnTheFly > p.Sequential {
			t.Errorf("overlap must never hurt: %+v", p)
		}
		t.Logf("block %dx%d: seq=%.2fms otf=%.2fms gain=%.1f%%",
			p.BlockX, p.BlockY, p.Sequential*1e3, p.OnTheFly*1e3, p.Gain*100)
	}
	// Somewhere in the sweep the gain reaches the paper's ~10% claim.
	found := false
	for _, p := range pts {
		if p.Gain > 0.05 {
			found = true
		}
	}
	if !found {
		t.Error("no configuration shows a ≥5% on-the-fly gain")
	}
}

// TestAoSPenalty: the SoA layout beats AoS by roughly an order of
// magnitude on the DMA-driven Sunway memory system (§IV-A).
func TestAoSPenalty(t *testing.T) {
	soa, aos, ratio := AoSPenalty(sunway.SW26010)
	if ratio < 5 || ratio > 30 {
		t.Errorf("SoA/AoS ratio = %.1f (SoA %.1f, AoS %.1f MLUPS), want 5-30×",
			ratio, soa.MLUPS(), aos.MLUPS())
	}
	t.Logf("SoA %.1f MLUPS vs AoS %.1f MLUPS: %.1f× (the paper's layout argument)",
		soa.MLUPS(), aos.MLUPS(), ratio)
}

// TestMappingAblation: tiled supernode placement beats row-major at the
// strong-scaling endpoint by keeping y messages on the switch boards.
func TestMappingAblation(t *testing.T) {
	m := TaihuLightModel()
	pts := m.MappingAblation(25, 25, 5000, 400, 400)
	if len(pts) != 2 {
		t.Fatalf("%d mappings", len(pts))
	}
	row, tiled := pts[0], pts[1]
	if tiled.YCross >= row.YCross {
		t.Errorf("tiled y-crossing %v should be below row-major %v", tiled.YCross, row.YCross)
	}
	if tiled.StepTime >= row.StepTime {
		t.Errorf("tiled mapping (%v) should beat row-major (%v)", tiled.StepTime, row.StepTime)
	}
	gain := row.StepTime/tiled.StepTime - 1
	t.Logf("rank mapping at the Fig.14 endpoint: row-major %.1f ms vs tiled %.1f ms (%.0f%% faster)",
		row.StepTime*1e3, tiled.StepTime*1e3, gain*100)
}
