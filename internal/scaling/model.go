// Package scaling drives the paper's extreme-scale experiments (Figs. 8,
// 13–16): weak and strong scaling on Sunway TaihuLight and the new Sunway
// supercomputer, and the optimization-stage ablation. Functional runs at
// these scales are impossible anywhere (5.6 trillion cells), so this
// package combines the per-core-group cost model calibrated against the
// functional internal/swlb simulator with the internal/network
// interconnect model — the analytic half of the hardware substitution
// documented in DESIGN.md.
package scaling

import (
	"math"

	"sunwaylb/internal/network"
	"sunwaylb/internal/perf"
	"sunwaylb/internal/sunway"
)

// KernelConfig mirrors the swlb optimization switches for the analytic
// per-CG cost model.
type KernelConfig struct {
	UseCPEs    bool
	Fused      bool
	YSharing   bool
	AsyncDMA   bool
	ComputeEff float64
	BZ         int
}

// FullOpt is the fully optimized kernel configuration.
func FullOpt() KernelConfig {
	return KernelConfig{UseCPEs: true, Fused: true, YSharing: true, AsyncDMA: true,
		ComputeEff: 0.55, BZ: 70}
}

// perCellBytesEq returns the DMA time-equivalent bytes per cell update for
// the configuration: 19 population loads and 19 stores (with
// write-allocate), each as a z-run of runLen cells paying the descriptor
// startup, plus the tile-halo redundancy when y-sharing is off and the
// full intermediate round-trip when fusion is off. This is the analytic
// form of the traffic the functional swlb kernel actually generates.
func perCellBytesEq(spec sunway.ChipSpec, runLen int, kc KernelConfig) float64 {
	if runLen < 1 {
		runLen = 1
	}
	over := spec.DMAStartupBytes / float64(runLen)
	load := 8 + over
	store := 8*spec.StoreWriteAllocate + over
	loads, stores := 19.0, 19.0
	if !kc.YSharing {
		loads += 10 // redundant y-halo runs (tile-plus-halo baseline)
	}
	bytes := loads*load + stores*store
	if !kc.Fused {
		// The streamed populations round-trip through main memory.
		bytes += 19*load + 19*store
	}
	return bytes
}

// CGTime is the simulated time for one core group to update a block of
// nx×ny×nz cells with the given kernel configuration. It reproduces the
// functional swlb engine's accounting in closed form.
func CGTime(spec sunway.ChipSpec, nx, ny, nz int, kc KernelConfig) float64 {
	cells := float64(nx) * float64(ny) * float64(nz)
	if !kc.UseCPEs {
		bw := cells * perf.BytesPerLUP / spec.MPEBandwidth
		fl := cells * perf.FlopsPerLUP / spec.MPEFlops
		return math.Max(bw, fl)
	}
	runLen := kc.BZ
	if runLen <= 0 {
		runLen = 70
	}
	if nz < runLen {
		runLen = nz
	}
	memT := cells * perCellBytesEq(spec, runLen, kc) / spec.DMABandwidth
	compT := cells * perf.FlopsPerLUP / (spec.CGPeakFlops() * kc.ComputeEff)
	if !kc.Fused {
		compT *= 1.1 // the extra streaming pass's move loop
	}
	if kc.AsyncDMA {
		// Dual pipelines overlap computation with DMA.
		return math.Max(memT, compT)
	}
	return memT + compT
}

// CGRate is the per-CG update rate implied by CGTime.
func CGRate(spec sunway.ChipSpec, nx, ny, nz int, kc KernelConfig) perf.LUPS {
	t := CGTime(spec, nx, ny, nz, kc)
	return perf.Rate(int64(nx)*int64(ny)*int64(nz), t)
}

// Model bundles the machine, interconnect and scheme for the distributed
// step-time model.
type Model struct {
	Spec sunway.ChipSpec
	Net  network.Topology
	// OnTheFly selects the overlapped halo-exchange scheme (§IV-C-1);
	// false is the sequential exchange of Fig. 6(1).
	OnTheFly bool
	// Kernel is the per-CG kernel configuration.
	Kernel KernelConfig
	// ContentionBeta controls how fat-tree contention grows with the
	// number of supernodes in use (TaihuLight's tree is tapered, so the
	// effective inter-supernode bandwidth drops as more of the machine
	// participates). Calibrated so the cylinder strong-scaling endpoint
	// lands near the paper's 71.48%.
	ContentionBeta float64
	// JitterSigma models per-rank OS noise; the expected maximum over N
	// ranks grows like σ·sqrt(2·ln N).
	JitterSigma float64
}

// TaihuLightModel returns the calibrated TaihuLight configuration.
func TaihuLightModel() Model {
	return Model{
		Spec:           sunway.SW26010,
		Net:            network.TaihuLightNet,
		OnTheFly:       true,
		Kernel:         FullOpt(),
		ContentionBeta: 2.1,
		JitterSigma:    20e-6,
	}
}

// NewSunwayModel returns the calibrated new-Sunway configuration.
func NewSunwayModel() Model {
	return Model{
		Spec:           sunway.SW26010Pro,
		Net:            network.NewSunwayNet,
		OnTheFly:       true,
		Kernel:         FullOpt(),
		ContentionBeta: 5.0,
		JitterSigma:    15e-6,
	}
}

// popBytes is the wire size of one halo cell (19 populations of 8 B).
const popBytes = 19 * 8

// StepTime models one distributed time step for a rank owning a
// bnx×bny×bnz block inside a px×py process grid (interior rank: the
// worst case that paces the step).
//
// Supernode locality follows the default block placement: x-neighbours are
// adjacent ranks and almost always share the supernode's all-to-all switch
// board; y-neighbours are px ranks apart, so the fraction of y messages
// that must cross the tapered fat tree grows with the grid width. The
// fat-tree contention factor grows with the number of supernodes in use
// (the tree is oversubscribed towards the root).
func (m Model) StepTime(bnx, bny, bnz, px, py int) float64 {
	ranks := px * py
	cgT := CGTime(m.Spec, bnx, bny, bnz, m.Kernel)

	supernodes := (ranks + m.Net.RanksPerSupernode - 1) / m.Net.RanksPerSupernode
	contention := 1 + m.ContentionBeta*math.Log(math.Max(1, float64(supernodes)))
	interBW := m.Net.InterBandwidth / contention

	// Fraction of y (and diagonal) messages crossing supernodes: the
	// neighbour is px ranks away inside RanksPerSupernode-sized groups.
	crossFrac := math.Min(1, 4*float64(px)/float64(m.Net.RanksPerSupernode))
	wire := func(bytes int64, cross float64) float64 {
		intra := m.Net.IntraLatency + float64(bytes)/m.Net.IntraBandwidth
		inter := m.Net.InterLatency + float64(bytes)/interBW
		return cross*inter + (1-cross)*intra
	}
	haloT := 0.0
	inject := 0.0
	if px > 1 {
		xb := int64(bny) * int64(bnz) * popBytes
		haloT = math.Max(haloT, wire(xb, 0))
		inject += 2 * m.Net.SoftwareOverhead
	}
	if py > 1 {
		yb := int64(bnx) * int64(bnz) * popBytes
		haloT = math.Max(haloT, wire(yb, crossFrac))
		inject += 2 * m.Net.SoftwareOverhead
	}
	if px > 1 && py > 1 {
		haloT = math.Max(haloT, wire(int64(bnz)*popBytes, crossFrac))
		inject += 4 * m.Net.SoftwareOverhead
	}
	haloT += inject

	jitter := m.JitterSigma * math.Sqrt(2*math.Log(math.Max(2, float64(ranks))))
	sync := m.Net.AllreduceTime(ranks)

	if !m.OnTheFly {
		return haloT + cgT + sync + jitter
	}
	// On-the-fly: the inner region overlaps communication; the boundary
	// strips run after both complete.
	innerFrac := 1.0
	if bnx > 2 && bny > 2 {
		innerFrac = float64((bnx-2)*(bny-2)) / float64(bnx*bny)
	}
	innerT := cgT * innerFrac
	bndT := cgT * (1 - innerFrac)
	return math.Max(innerT, haloT) + bndT + sync + jitter
}

// ceilDiv returns ⌈a/b⌉ — the block size of the worst-loaded rank, which
// paces a bulk-synchronous step.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Point is one measurement of a scaling experiment.
type Point struct {
	// CGs is the number of core groups (MPI ranks); Cores counts all
	// hardware cores (65 per CG).
	CGs, Cores int
	// PX, PY is the process grid.
	PX, PY int
	// Cells is the global lattice size.
	Cells int64
	// StepTime is the modelled wall time of one step.
	StepTime float64
	// Rate is the aggregate update rate; PFlops the sustained flops.
	Rate   perf.LUPS
	PFlops float64
	// Efficiency is the parallel efficiency relative to the series base.
	Efficiency float64
	// BWUtil is the aggregate memory-bandwidth utilization.
	BWUtil float64
}

// WeakScaling runs a weak-scaling series: every CG keeps a block of
// bx×by×bz cells while the process grid grows (Figs. 13 and 15).
func (m Model) WeakScaling(bx, by, bz int, grids [][2]int) []Point {
	pts := make([]Point, 0, len(grids))
	var base Point
	for i, g := range grids {
		px, py := g[0], g[1]
		cgs := px * py
		st := m.StepTime(bx, by, bz, px, py)
		cells := int64(bx) * int64(by) * int64(bz) * int64(cgs)
		p := Point{
			CGs: cgs, Cores: cgs * 65, PX: px, PY: py,
			Cells: cells, StepTime: st,
			Rate: perf.Rate(cells, st),
		}
		p.PFlops = p.Rate.Flops() / 1e15
		p.BWUtil = perf.BandwidthUtilization(p.Rate, m.Spec.DMABandwidth*float64(cgs))
		if i == 0 {
			base = p
		}
		p.Efficiency = perf.ParallelEfficiency(base.Rate, p.Rate, base.CGs, p.CGs)
		pts = append(pts, p)
	}
	return pts
}

// StrongScaling runs a strong-scaling series: a fixed global mesh divided
// over growing process grids (Figs. 14 and 16).
func (m Model) StrongScaling(gnx, gny, gnz int, grids [][2]int) []Point {
	pts := make([]Point, 0, len(grids))
	var base Point
	cells := int64(gnx) * int64(gny) * int64(gnz)
	for i, g := range grids {
		px, py := g[0], g[1]
		cgs := px * py
		st := m.StepTime(ceilDiv(gnx, px), ceilDiv(gny, py), gnz, px, py)
		p := Point{
			CGs: cgs, Cores: cgs * 65, PX: px, PY: py,
			Cells: cells, StepTime: st,
			Rate: perf.Rate(cells, st),
		}
		p.PFlops = p.Rate.Flops() / 1e15
		p.BWUtil = perf.BandwidthUtilization(p.Rate, m.Spec.DMABandwidth*float64(cgs))
		if i == 0 {
			base = p
		}
		p.Efficiency = perf.ParallelEfficiency(base.Rate, p.Rate, base.CGs, p.CGs)
		pts = append(pts, p)
	}
	return pts
}

// Stage is one bar of the Fig. 8 optimization ablation.
type Stage struct {
	Name     string
	StepTime float64
	Speedup  float64 // cumulative vs the baseline
}

// Fig8Ablation reproduces the optimization staircase of Fig. 8 for one CG
// holding the paper's weak-scaling block (500×700×100 cells): MPE baseline
// → CPE blocking/sharing → kernel fusion → on-the-fly halo exchange →
// assembly-level optimization. The on-the-fly stage applies the paper's
// ≈10% whole-step improvement from hiding communication.
func Fig8Ablation(spec sunway.ChipSpec) []Stage {
	const bx, by, bz = 500, 700, 100
	type cfg struct {
		name     string
		kc       KernelConfig
		onTheFly bool
	}
	cfgs := []cfg{
		{"MPE baseline", KernelConfig{UseCPEs: false, ComputeEff: 0.08, BZ: 70}, false},
		{"+CPE blocking & data sharing", KernelConfig{UseCPEs: true, Fused: false, YSharing: true, ComputeEff: 0.08, BZ: 70}, false},
		{"+kernel fusion", KernelConfig{UseCPEs: true, Fused: true, YSharing: true, ComputeEff: 0.08, BZ: 70}, false},
		{"+on-the-fly halo exchange", KernelConfig{UseCPEs: true, Fused: true, YSharing: true, ComputeEff: 0.08, BZ: 70}, true},
		{"+assembly optimization", KernelConfig{UseCPEs: true, Fused: true, YSharing: true, AsyncDMA: true, ComputeEff: 0.55, BZ: 70}, true},
	}
	stages := make([]Stage, 0, len(cfgs))
	var baseline float64
	for i, c := range cfgs {
		t := CGTime(spec, bx, by, bz, c.kc)
		if c.onTheFly {
			// Hiding the halo exchange saves ≈10% of the step
			// (§IV-C-1).
			t *= 0.9
		}
		if i == 0 {
			baseline = t
		}
		stages = append(stages, Stage{Name: c.name, StepTime: t, Speedup: baseline / t})
	}
	return stages
}
