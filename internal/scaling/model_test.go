package scaling

import (
	"math"
	"testing"

	"sunwaylb/internal/perf"
	"sunwaylb/internal/sunway"
)

// TestFig13WeakScaling: the TaihuLight weak-scaling series must reach the
// paper's headline neighbourhood — ≈11245 GLUPS, ≈4.7 PFlops, ≈77%
// bandwidth utilization and 5.6 trillion cells at 160000 CGs — with
// near-linear efficiency throughout.
func TestFig13WeakScaling(t *testing.T) {
	m := TaihuLightModel()
	pts := m.WeakScaling(Fig13Block[0], Fig13Block[1], Fig13Block[2], Fig13Grids)
	last := pts[len(pts)-1]
	if last.CGs != 160000 || last.Cores != 10400000 {
		t.Fatalf("endpoint = %d CGs / %d cores", last.CGs, last.Cores)
	}
	if last.Cells != 5.6e12 {
		t.Errorf("cells = %d, want 5.6e12", last.Cells)
	}
	if g := last.Rate.GLUPS(); math.Abs(g-11245)/11245 > 0.10 {
		t.Errorf("rate = %.0f GLUPS, paper says 11245 (±10%%)", g)
	}
	if math.Abs(last.PFlops-4.7)/4.7 > 0.10 {
		t.Errorf("sustained = %.2f PFlops, paper says 4.7 (±10%%)", last.PFlops)
	}
	if math.Abs(last.BWUtil-0.77) > 0.06 {
		t.Errorf("bandwidth utilization = %.3f, paper says 0.77", last.BWUtil)
	}
	for _, p := range pts {
		if p.Efficiency < 0.90 || p.Efficiency > 1.02 {
			t.Errorf("weak-scaling efficiency at %d CGs = %.3f, want ≥0.90 (paper: ≥94%%)",
				p.CGs, p.Efficiency)
		}
	}
	t.Logf("Fig13 endpoint: %.0f GLUPS, %.2f PFlops, %.1f%% BW, eff %.1f%%",
		last.Rate.GLUPS(), last.PFlops, last.BWUtil*100, last.Efficiency*100)
}

// TestFig14StrongScaling: the fixed-mesh series lose efficiency with
// scale, the endpoint efficiencies land near the paper's values, and the
// case ordering (urban > cylinder > Suboff) is preserved.
func TestFig14StrongScaling(t *testing.T) {
	m := TaihuLightModel()
	effs := map[string]float64{}
	for _, c := range Fig14Cases {
		pts := m.StrongScaling(c.GNX, c.GNY, c.GNZ, Fig14Grids)
		last := pts[len(pts)-1]
		if last.CGs != 160000 {
			t.Fatalf("%s endpoint CGs = %d", c.Name, last.CGs)
		}
		effs[c.Name] = last.Efficiency
		if math.Abs(last.Efficiency-c.PaperEff) > 0.12 {
			t.Errorf("%s endpoint efficiency = %.3f, paper says %.3f (±0.12)",
				c.Name, last.Efficiency, c.PaperEff)
		}
		// Strong scaling: total rate must still increase with ranks.
		for i := 1; i < len(pts); i++ {
			if pts[i].Rate <= pts[i-1].Rate {
				t.Errorf("%s: rate non-increasing at %d CGs", c.Name, pts[i].CGs)
			}
			// Ceiling-divided block sizes cause small quantisation
			// bumps; efficiency must not rise materially.
			if pts[i].Efficiency > pts[i-1].Efficiency+0.05 {
				t.Errorf("%s: efficiency increased at %d CGs", c.Name, pts[i].CGs)
			}
		}
		t.Logf("Fig14 %s: endpoint eff %.1f%% (paper %.1f%%)",
			c.Name, last.Efficiency*100, c.PaperEff*100)
	}
	if !(effs["urban wind field"] > effs["flow past cylinder"] &&
		effs["flow past cylinder"] > effs["DARPA Suboff"]) {
		t.Errorf("case ordering broken: %+v (want urban > cylinder > suboff)", effs)
	}
}

// TestFig15WeakScalingNewSunway: 60000 CGs, 4.2 T cells, ≈6583 GLUPS,
// ≈2.76 PFlops, ≈81.4% utilization.
func TestFig15WeakScalingNewSunway(t *testing.T) {
	m := NewSunwayModel()
	pts := m.WeakScaling(Fig15Block[0], Fig15Block[1], Fig15Block[2], Fig15Grids)
	last := pts[len(pts)-1]
	if last.CGs != 60000 {
		t.Fatalf("endpoint = %d CGs", last.CGs)
	}
	if last.Cells != 4.2e12 {
		t.Errorf("cells = %d, want 4.2e12", last.Cells)
	}
	if g := last.Rate.GLUPS(); math.Abs(g-6583)/6583 > 0.12 {
		t.Errorf("rate = %.0f GLUPS, paper says 6583 (±12%%)", g)
	}
	if math.Abs(last.PFlops-2.76)/2.76 > 0.12 {
		t.Errorf("sustained = %.2f PFlops, paper says 2.76 (±12%%)", last.PFlops)
	}
	if math.Abs(last.BWUtil-0.814) > 0.07 {
		t.Errorf("bandwidth utilization = %.3f, paper says 0.814", last.BWUtil)
	}
	t.Logf("Fig15 endpoint: %.0f GLUPS, %.2f PFlops, %.1f%% BW",
		last.Rate.GLUPS(), last.PFlops, last.BWUtil*100)
}

// TestFig16StrongScalingNewSunway: the cylinder case ends near the paper's
// 72.2% at 60000 CGs; all series stay monotone.
func TestFig16StrongScalingNewSunway(t *testing.T) {
	m := NewSunwayModel()
	for _, c := range Fig16Cases {
		pts := m.StrongScaling(c.GNX, c.GNY, c.GNZ, c.Grids)
		last := pts[len(pts)-1]
		if c.PaperEff > 0 && math.Abs(last.Efficiency-c.PaperEff) > 0.15 {
			t.Errorf("%s endpoint efficiency = %.3f, paper says %.3f",
				c.Name, last.Efficiency, c.PaperEff)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Rate <= pts[i-1].Rate {
				t.Errorf("%s: rate non-increasing at %d CGs", c.Name, pts[i].CGs)
			}
		}
		t.Logf("Fig16 %s: endpoint eff %.1f%% at %d CGs",
			c.Name, last.Efficiency*100, last.CGs)
	}
}

// TestFig8Ablation: the optimization staircase must be monotone, the CPE
// offload must contribute a large factor (paper: >75×), and the cumulative
// speedup must land near the paper's 172× (73.6 s → 0.426 s).
func TestFig8Ablation(t *testing.T) {
	stages := Fig8Ablation(sunway.SW26010)
	if len(stages) != 5 {
		t.Fatalf("%d stages, want 5", len(stages))
	}
	for i := 1; i < len(stages); i++ {
		if stages[i].StepTime >= stages[i-1].StepTime {
			t.Errorf("stage %q no faster than %q", stages[i].Name, stages[i-1].Name)
		}
	}
	base := stages[0].StepTime
	if math.Abs(base-73.6)/73.6 > 0.15 {
		t.Errorf("baseline step = %.1f s, paper says 73.6 s (±15%%)", base)
	}
	final := stages[len(stages)-1]
	if math.Abs(final.StepTime-0.426)/0.426 > 0.25 {
		t.Errorf("final step = %.3f s, paper says 0.426 s (±25%%)", final.StepTime)
	}
	if final.Speedup < 120 || final.Speedup > 250 {
		t.Errorf("cumulative speedup = %.0f×, paper says 172×", final.Speedup)
	}
	if cpe := stages[1].Speedup; cpe < 40 {
		t.Errorf("CPE offload speedup = %.0f×, paper says >75×", cpe)
	}
	for _, s := range stages {
		t.Logf("Fig8 %-32s %8.3f s  %6.1f×", s.Name, s.StepTime, s.Speedup)
	}
}

// TestCGRateMatchesFunctionalSimulator: the analytic per-CG model must
// agree with the functional swlb simulation within a modest margin (the
// simulator adds register-communication and wave-quantisation overheads).
func TestCGRateMatchesFunctionalSimulator(t *testing.T) {
	// The functional simulator measured ≈62-75 MLUPS/CG for the
	// fully-optimized kernel (see swlb's TestBandwidthUtilization); the
	// analytic model must stay in that band.
	r := CGRate(sunway.SW26010, 500, 700, 100, FullOpt())
	if r.MLUPS() < 55 || r.MLUPS() > 85 {
		t.Errorf("analytic CG rate = %.1f MLUPS, want 55-85 (functional sim: ~62-75)", r.MLUPS())
	}
}

// TestOnTheFlyGain: the overlapped scheme improves the step time (paper:
// ≈10%) when communication is a visible fraction of the step.
func TestOnTheFlyGain(t *testing.T) {
	m := TaihuLightModel()
	seq := m
	seq.OnTheFly = false
	// A smallish block where communication matters.
	tOn := m.StepTime(64, 64, 1000, 400, 400)
	tOff := seq.StepTime(64, 64, 1000, 400, 400)
	if tOn >= tOff {
		t.Errorf("on-the-fly (%v) must beat sequential (%v)", tOn, tOff)
	}
	gain := tOff/tOn - 1
	if gain < 0.02 || gain > 0.9 {
		t.Errorf("on-the-fly gain = %.1f%%, want a visible single/double-digit %%", gain*100)
	}
}

// TestStrongScalingDegradesWithSurface: smaller blocks mean proportionally
// more communication, so per-CG rates drop (the physics of Figs. 14/16).
func TestStrongScalingDegradesWithSurface(t *testing.T) {
	m := TaihuLightModel()
	big := m.StepTime(100, 100, 5000, 100, 100)
	small := m.StepTime(25, 25, 5000, 400, 400)
	ratePerCellBig := float64(100*100*5000) / big
	ratePerCellSmall := float64(25*25*5000) / small
	if ratePerCellSmall >= ratePerCellBig {
		t.Errorf("per-CG rate must degrade with smaller blocks: %.3g vs %.3g",
			ratePerCellSmall, ratePerCellBig)
	}
}

func TestPerCellBytesShape(t *testing.T) {
	spec := sunway.SW26010
	opt := perCellBytesEq(spec, 70, FullOpt())
	noShare := perCellBytesEq(spec, 70, KernelConfig{UseCPEs: true, Fused: true, ComputeEff: 0.55, BZ: 70})
	unfused := perCellBytesEq(spec, 70, KernelConfig{UseCPEs: true, Fused: false, YSharing: true, ComputeEff: 0.55, BZ: 70})
	short := perCellBytesEq(spec, 4, FullOpt())
	if !(opt < noShare && noShare < unfused+10*9) {
		t.Errorf("traffic ordering broken: opt=%v noShare=%v unfused=%v", opt, noShare, unfused)
	}
	if unfused <= noShare {
		t.Errorf("unfused must exceed tile-halo fused: %v vs %v", unfused, noShare)
	}
	if short <= opt {
		t.Error("short runs must pay more startup overhead per byte")
	}
	// The optimized constant sits near the paper's 380 B/LUP + startup.
	if opt < perf.BytesPerLUP || opt > perf.BytesPerLUP*1.35 {
		t.Errorf("optimized per-cell traffic = %.0f B, want within 35%% above 380", opt)
	}
}

func TestWeakScalingGridsConsistent(t *testing.T) {
	for _, g := range Fig13Grids {
		if g[0] <= 0 || g[1] <= 0 {
			t.Fatalf("bad grid %v", g)
		}
	}
	if n := Fig13Grids[len(Fig13Grids)-1]; n[0]*n[1] != 160000 {
		t.Error("Fig13 must end at 160000 CGs")
	}
	if n := Fig15Grids[len(Fig15Grids)-1]; n[0]*n[1] != 60000 {
		t.Error("Fig15 must end at 60000 CGs")
	}
}
