package scaling

// This file pins down the exact experiment configurations of the paper's
// evaluation section so the benchmark harness and the tests regenerate the
// same series.

// Fig13Block is the per-CG block of the TaihuLight weak scaling: "each CG
// contains a block size of 500 by 700 by 100" (§V-A-2).
var Fig13Block = [3]int{500, 700, 100}

// Fig13Grids scales from 1 CG (65 cores) to 160000 CGs (10.4 M cores),
// ending at the paper's 400×400 process grid and 5.6 trillion cells.
var Fig13Grids = [][2]int{
	{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16}, {32, 32},
	{64, 64}, {128, 128}, {256, 256}, {400, 400},
}

// Fig14Grids is the strong-scaling rank series of Fig. 14: 16384 CGs
// (1,064,960 cores) up to 160000 CGs (10.4 M cores).
var Fig14Grids = [][2]int{
	{128, 128}, {160, 160}, {200, 200}, {256, 256}, {320, 320}, {400, 400},
}

// Fig14Cases are the three strong-scaling meshes of Fig. 14. The cylinder
// mesh is given in §V-A-2 (10000×10000×5000); the urban mesh in §V-C
// (11511×14744×1600); the Suboff mesh is not stated in the paper, so a
// mid-size hull domain with a less favourable surface-to-volume ratio is
// used (it reproduces the reported ordering: urban 89% > cylinder 71.48% >
// Suboff 68.89%).
var Fig14Cases = []struct {
	Name          string
	GNX, GNY, GNZ int
	PaperEff      float64 // efficiency at 160000 CGs reported in §V
}{
	{"flow past cylinder", 10000, 10000, 5000, 0.7148},
	{"DARPA Suboff", 10000, 9700, 5000, 0.6889},
	{"urban wind field", 11511, 14744, 1600, 0.89},
}

// Fig15Block is the per-CG block of the new-Sunway weak scaling: "each CG
// contains a block size of 1000*700*100" (§V-A-3).
var Fig15Block = [3]int{1000, 700, 100}

// Fig15Grids scales from 6000 CGs (390000 cores) to 60000 CGs (3.9 M
// cores), 4.2 trillion cells at the end.
var Fig15Grids = [][2]int{
	{100, 60}, {120, 100}, {160, 150}, {240, 200}, {300, 200},
}

// Fig16Cases are the new-Sunway strong-scaling runs with their own rank
// ranges (§V-A-3): wind field 13000→130000 cores, wake 65000→1,170,000,
// cylinder 390000→3,900,000.
var Fig16Cases = []struct {
	Name          string
	GNX, GNY, GNZ int
	Grids         [][2]int
	PaperEff      float64
}{
	{"wind field", 4000, 4000, 1000,
		[][2]int{{20, 10}, {25, 16}, {40, 25}, {50, 40}}, 0},
	{"wake simulation", 200000, 1000, 1500,
		[][2]int{{200, 5}, {400, 9}, {720, 10}, {900, 20}}, 0},
	{"flow past cylinder", 10000, 7000, 5000,
		[][2]int{{100, 60}, {150, 80}, {250, 120}, {300, 200}}, 0.722},
}

// PaperHeadline records the headline numbers the reproduction targets.
var PaperHeadline = struct {
	TaihuLightGLUPS   float64
	TaihuLightPFlops  float64
	TaihuLightBWUtil  float64
	TaihuLightCells   float64
	NewSunwayGLUPS    float64
	NewSunwayPFlops   float64
	NewSunwayBWUtil   float64
	NewSunwayCells    float64
	Fig8Speedup       float64
	Fig8BaselineSec   float64
	Fig8FinalSec      float64
	GPUSpeedup        float64
	GPUBWUtil         float64
	GPUStrongScaleEff float64
}{
	TaihuLightGLUPS:   11245,
	TaihuLightPFlops:  4.7,
	TaihuLightBWUtil:  0.77,
	TaihuLightCells:   5.6e12,
	NewSunwayGLUPS:    6583,
	NewSunwayPFlops:   2.76,
	NewSunwayBWUtil:   0.814,
	NewSunwayCells:    4.2e12,
	Fig8Speedup:       172,
	Fig8BaselineSec:   73.6,
	Fig8FinalSec:      0.426,
	GPUSpeedup:        191,
	GPUBWUtil:         0.838,
	GPUStrongScaleEff: 0.863,
}
