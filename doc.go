// Package sunwaylb is a comprehensive Go reproduction of "SunwayLB:
// Enabling Extreme-Scale Lattice Boltzmann Method Based Computing Fluid
// Dynamics Simulations on Sunway TaihuLight" (Liu et al., IPDPS 2019 /
// TPDS 2024).
//
// The module implements the paper's complete software framework — the
// D3Q19 LBM solver with the fused pull-scheme kernel, mesh generation and
// boundary conditions, 2-D domain decomposition with on-the-fly halo
// exchange, Smagorinsky LES, parallel I/O with checkpoint/restart, and
// post-processing — together with functional and performance models of the
// hardware the paper evaluates (SW26010/SW26010-Pro processors, the
// TaihuLight supernode network, an RTX-3090 GPU cluster), so every table
// and figure of the paper's evaluation can be regenerated on a laptop.
//
// Entry points:
//
//   - internal/core — the solver library (see examples/ for usage)
//   - cmd/sunwaylb — the solver CLI with built-in cases
//   - cmd/benchsuite — regenerates every paper figure
//   - bench_test.go — the testing.B harness (one benchmark per figure)
//
// See README.md for the architecture, DESIGN.md for the hardware
// substitution rationale and EXPERIMENTS.md for paper-vs-modelled numbers.
package sunwaylb
