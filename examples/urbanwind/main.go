// Wind flow over a synthetic urban area — the paper's flagship application
// (§V-C, Fig. 19: a 1 km × 1 km Shanghai district at 0.1 m resolution, 271
// billion cells, LES on 10.4 million cores). This functional version runs
// the same pipeline — city generation, voxelization, Smagorinsky LES, a
// boundary-layer inlet profile — on a laptop-scale grid, and reports the
// quantities the wind-energy use case needs: the velocity field at
// pedestrian and rooftop heights and the vertical wind profile.
//
// Usage:
//
//	go run ./examples/urbanwind [-steps 600]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"sunwaylb/internal/boundary"
	"sunwaylb/internal/core"
	"sunwaylb/internal/geometry"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/vis"
)

func main() {
	log.SetFlags(0)
	steps := flag.Int("steps", 600, "time steps")
	out := flag.String("out", "urban_speed.ppm", "pedestrian-level speed image (empty to skip)")
	flag.Parse()

	const (
		nx, ny, nz = 96, 96, 24
		uWind      = 0.08 // the paper's 8 m/s inlet, in lattice units
		tau        = 0.52 // high-Re: LES supplies the subgrid viscosity
	)
	lat, err := core.NewLattice(&lattice.D3Q19, nx, ny, nz, tau)
	if err != nil {
		log.Fatalf("urbanwind: %v", err)
	}
	lat.Smagorinsky = 0.17

	// A deterministic synthetic city: the solver sees the same kind of
	// voxelized obstacle field as the paper's GIS-derived Shanghai
	// district (the substitution documented in DESIGN.md).
	params := geometry.DefaultUrbanParams()
	params.SizeX, params.SizeY = float64(nx), float64(ny)
	params.BlocksX, params.BlocksY = 6, 6
	params.MinHeight, params.MaxHeight = 4, float64(nz)*0.7
	city := geometry.City(params)
	if err := geometry.VoxelizeInto(lat, city,
		geometry.VoxelGrid{NX: nx, NY: ny, NZ: nz, H: 1}); err != nil {
		log.Fatalf("urbanwind: %v", err)
	}
	solid := nx*ny*nz - lat.FluidCells()
	fmt.Printf("urban wind LES: %d×%d×%d cells, %d building cells (%.1f%%), %d steps\n",
		nx, ny, nz, solid, 100*float64(solid)/float64(nx*ny*nz), *steps)

	// Boundary-layer inlet: a power-law wind profile u(z) ∝ (z/H)^α.
	profile := func(x, y, z int) [3]float64 {
		u := uWind * math.Pow((float64(z)+0.5)/float64(nz), 0.25)
		return [3]float64{u, 0, 0}
	}
	var bcs boundary.Set
	bcs.Add(
		&boundary.Periodic{Axis: 1},
		&boundary.VelocityInlet{Face: core.FaceXMin, Profile: profile},
		&boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
		&boundary.FreeSlip{Face: core.FaceZMax},
		&boundary.NoSlip{Face: core.FaceZMin},
	)

	// Start from the inlet profile everywhere.
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			for z := 0; z < nz; z++ {
				if lat.CellTypeAt(x, y, z) == core.Fluid {
					u := profile(x, y, z)
					lat.SetCell(x, y, z, 1, u[0], u[1], u[2])
				}
			}
		}
	}

	stats := vis.NewStatistics(nx, ny, nz)
	for s := 1; s <= *steps; s++ {
		bcs.Apply(lat)
		lat.StepFusedParallel(0)
		if s > *steps/2 {
			if err := stats.Add(lat.ComputeMacro()); err != nil {
				log.Fatalf("urbanwind: %v", err)
			}
		}
		if rep := max(1, *steps/6); s%rep == 0 {
			fmt.Printf("  step %4d: max|u|=%.3f\n", s, lat.MaxVelocity())
		}
	}

	m := lat.ComputeMacro()
	// Vertical wind profile averaged over the outflow half of the domain
	// — what a wind-turbine siting study reads off first.
	fmt.Println("\nmean wind profile (downstream half):")
	for z := 1; z < nz; z += 4 {
		sum, cnt := 0.0, 0
		for y := 0; y < ny; y++ {
			for x := nx / 2; x < nx; x++ {
				i := m.Idx(x, y, z)
				if m.Rho[i] > 0 {
					sum += m.Ux[i]
					cnt++
				}
			}
		}
		if cnt > 0 {
			bar := int(40 * sum / float64(cnt) / uWind)
			if bar < 0 {
				bar = 0
			}
			fmt.Printf("  z=%2d  u/U=%5.2f  %s\n", z, sum/float64(cnt)/uWind, bars(bar))
		}
	}

	// Wind-energy metrics at a rooftop monitoring site: mean speed and
	// turbulence intensity (time-averaged over the second half of the
	// run).
	mean := stats.Mean()
	site := mean.Idx(nx/2, ny/2, nz-4)
	meanU := math.Sqrt(mean.Ux[site]*mean.Ux[site] + mean.Uy[site]*mean.Uy[site] + mean.Uz[site]*mean.Uz[site])
	fmt.Printf("\nrooftop site (%d,%d,%d): mean |u|/U=%.2f, turbulence intensity %.1f%%\n",
		nx/2, ny/2, nz-4, meanU/uWind, 100*stats.TurbulenceIntensity(site, meanU))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("urbanwind: %v", err)
		}
		defer f.Close()
		// Pedestrian level ≈ 2 cells above ground.
		if err := vis.WritePPM(f, vis.SpeedSlice(m, vis.AxisZ, 2), 0, 0); err != nil {
			log.Fatalf("urbanwind: %v", err)
		}
		fmt.Printf("\nwrote pedestrian-level speed image to %s\n", *out)
	}
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
