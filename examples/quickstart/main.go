// Quickstart: the lid-driven cavity — the "hello world" of LBM solvers.
//
// A closed box of fluid is driven by its moving lid; a primary vortex
// forms and the flow converges to a steady state. This example shows the
// minimal SunwayLB-Go API: build a lattice, attach boundary conditions,
// step, and read macroscopic fields.
//
// Usage:
//
//	go run ./examples/quickstart [-n 32] [-steps 2000] [-re 100]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"sunwaylb/internal/boundary"
	"sunwaylb/internal/config"
	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/vis"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 32, "cavity size in cells per side")
	steps := flag.Int("steps", 2000, "time steps")
	re := flag.Float64("re", 100, "Reynolds number")
	out := flag.String("out", "cavity.ppm", "mid-plane speed image (empty to skip)")
	flag.Parse()

	const uLid = 0.1
	tau, err := config.TauForReynolds(*re, uLid, float64(*n))
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	lat, err := core.NewLattice(&lattice.D3Q19, *n, *n, *n, tau)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	// Five no-slip walls and a lid moving in +x at y = NY−1.
	var bcs boundary.Set
	bcs.Add(
		&boundary.NoSlip{Face: core.FaceXMin}, &boundary.NoSlip{Face: core.FaceXMax},
		&boundary.NoSlip{Face: core.FaceZMin}, &boundary.NoSlip{Face: core.FaceZMax},
		&boundary.NoSlip{Face: core.FaceYMin},
		&boundary.MovingNoSlip{Face: core.FaceYMax, U: [3]float64{uLid, 0, 0}},
	)

	fmt.Printf("lid-driven cavity: %d³ cells, Re=%g, tau=%.4f, %d steps\n",
		*n, *re, tau, *steps)

	prev := math.Inf(1)
	for s := 1; s <= *steps; s++ {
		bcs.Apply(lat)
		lat.StepFusedParallel(0)
		if rep := max(1, *steps/10); s%rep == 0 {
			// Convergence monitor: change of the centre velocity.
			m := lat.MacroAt(*n/2, *n/2, *n/2)
			v := math.Hypot(m.Ux, m.Uy)
			fmt.Printf("  step %5d: centre |u|=%.6f  (Δ=%.2e)  mass=%.6f\n",
				s, v, math.Abs(v-prev), lat.TotalMass()/float64(lat.FluidCells()))
			prev = v
		}
	}

	// The classic cavity diagnostic: u_x along the vertical centreline.
	fmt.Println("\nvertical centreline u_x/U_lid profile:")
	for _, frac := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		y := int(frac * float64(*n-1))
		m := lat.MacroAt(*n/2, y, *n/2)
		fmt.Printf("  y/H=%.2f  u_x/U=% .4f\n", frac, m.Ux/uLid)
	}
	m := lat.ComputeMacro()
	fmt.Printf("\ncompleted %d steps over %d fluid cells\n", lat.Step(), lat.FluidCells())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("quickstart: %v", err)
		}
		defer f.Close()
		if err := vis.WritePPM(f, vis.SpeedSlice(m, vis.AxisZ, *n/2), 0, 0); err != nil {
			log.Fatalf("quickstart: %v", err)
		}
		fmt.Printf("wrote mid-plane speed image to %s\n", *out)
	}
}
