// Flow past a circular cylinder — the paper's primary validation benchmark
// (§V-A-1, Fig. 12, at Re=3900 and 5.6 trillion cells on the real
// machine; here a functional laptop-scale run at Re≈100 that resolves the
// same physics: boundary-layer separation and the von Kármán vortex
// street).
//
// The run reports the drag coefficient and the Strouhal number of the
// shedding, and writes a vorticity snapshot — the quantities a CFD user
// checks against the literature (Cd ≈ 1.3–1.5, St ≈ 0.16–0.17 at Re=100
// for a confined cylinder).
//
// Usage:
//
//	go run ./examples/cylinder [-steps 8000] [-re 100]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sunwaylb/internal/boundary"
	"sunwaylb/internal/config"
	"sunwaylb/internal/core"
	"sunwaylb/internal/geometry"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/perf"
	"sunwaylb/internal/vis"
)

func main() {
	log.SetFlags(0)
	steps := flag.Int("steps", 8000, "time steps")
	re := flag.Float64("re", 100, "Reynolds number")
	out := flag.String("out", "cylinder_vorticity.ppm", "vorticity image (empty to skip)")
	flag.Parse()

	const (
		nx, ny, nz = 260, 120, 1 // quasi-2D: one periodic z layer
		diameter   = 16.0
		uIn        = 0.08
	)
	tau, err := config.TauForReynolds(*re, uIn, diameter)
	if err != nil {
		log.Fatalf("cylinder: %v", err)
	}
	lat, err := core.NewLattice(&lattice.D3Q19, nx, ny, nz, tau)
	if err != nil {
		log.Fatalf("cylinder: %v", err)
	}

	// Voxelize the cylinder (axis along z) one third into the domain.
	cyl := geometry.CylinderZ{CX: 65, CY: 60.5, Radius: diameter / 2, ZMin: -1, ZMax: nz + 1}
	if err := geometry.VoxelizeInto(lat, cyl,
		geometry.VoxelGrid{NX: nx, NY: ny, NZ: nz, H: 1}); err != nil {
		log.Fatalf("cylinder: %v", err)
	}

	var bcs boundary.Set
	bcs.Add(
		&boundary.Periodic{Axis: 2},
		&boundary.FreeSlip{Face: core.FaceYMin},
		&boundary.FreeSlip{Face: core.FaceYMax},
		&boundary.VelocityInlet{Face: core.FaceXMin, U: [3]float64{uIn, 0, 0}},
		&boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
	)

	// Impulsive start with a tiny asymmetry to trigger shedding.
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if lat.CellTypeAt(x, y, 0) != core.Fluid {
				continue
			}
			uy := 0.0
			if x > 65 && x < 90 && y > 60 {
				uy = 0.01
			}
			lat.SetCell(x, y, 0, 1.0, uIn, uy, 0)
		}
	}

	fmt.Printf("flow past cylinder: %d×%d, D=%g, Re=%g, tau=%.4f, %d steps\n",
		nx, ny, diameter, *re, tau, *steps)

	// Track the lift force and a wake velocity probe to measure the
	// shedding frequency two independent ways.
	var liftHist []float64
	var probes core.ProbeSet
	wake, err := probes.Add(lat, 100, 60, 0)
	if err != nil {
		log.Fatalf("cylinder: %v", err)
	}
	warmup := *steps / 2
	for s := 1; s <= *steps; s++ {
		bcs.Apply(lat)
		lat.StepFusedParallel(0)
		if s > warmup {
			_, fy, _ := lat.WallForce()
			liftHist = append(liftHist, fy)
			probes.Sample(lat)
		}
		if rep := max(1, *steps/8); s%rep == 0 {
			fx, fy, _ := lat.WallForce()
			cd := fx / (0.5 * uIn * uIn * diameter * nz)
			fmt.Printf("  step %5d: Cd=%.3f  Cl=%+.3f  max|u|=%.3f\n",
				s, cd, fy/(0.5*uIn*uIn*diameter*nz), lat.MaxVelocity())
		}
	}

	// Mean drag over the sampled window.
	fx, _, _ := lat.WallForce()
	cd := fx / (0.5 * uIn * uIn * diameter * nz)
	fmt.Printf("\nfinal drag coefficient Cd = %.3f (literature ≈1.3–1.5 at Re=100)\n", cd)

	// Strouhal number from the lift signal and, independently, from the
	// transverse velocity at a wake probe.
	if period, ok := perf.DominantPeriod(liftHist); ok {
		fmt.Printf("Strouhal number St = %.3f from lift (literature ≈0.16–0.17 at Re=100)\n",
			diameter/uIn/period)
	} else {
		fmt.Println("shedding not yet periodic — increase -steps to measure St")
	}
	if period, ok := perf.DominantPeriod(wake.Component(1)); ok {
		fmt.Printf("Strouhal number St = %.3f from the wake probe at (100,60)\n",
			diameter/uIn/period)
	}

	if *out != "" {
		m := lat.ComputeMacro()
		wz := vis.VorticityZ(m)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("cylinder: %v", err)
		}
		defer f.Close()
		s := vis.FieldSlice(m, wz, vis.AxisZ, 0)
		if err := vis.WritePPM(f, s, -0.02, 0.02); err != nil {
			log.Fatalf("cylinder: %v", err)
		}
		fmt.Printf("wrote vorticity snapshot to %s\n", *out)
	}
}
