// Taylor–Green vortex: the standard accuracy benchmark for LBM solvers.
//
// The vortex array decays analytically as exp(−2νk²t); comparing the
// measured decay with the analytic rate at several resolutions measures
// the solver's effective viscosity and its convergence order — the
// validation a CFD user runs before trusting any production result.
//
// Usage:
//
//	go run ./examples/taylorgreen [-steps 400]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

func main() {
	log.SetFlags(0)
	steps := flag.Int("steps", 400, "time steps per resolution")
	tau := flag.Float64("tau", 0.8, "relaxation time")
	flag.Parse()

	nu := lattice.Viscosity(*tau)
	fmt.Printf("Taylor–Green vortex: tau=%.3f  ν=%.5f  %d steps\n\n", *tau, nu, *steps)
	fmt.Printf("%6s %14s %14s %12s\n", "N", "measured ν", "rel. error", "order")

	var prevErr float64
	var prevN int
	for _, n := range []int{16, 32, 64} {
		nuEff, err := measureViscosity(n, *tau, *steps)
		if err != nil {
			log.Fatalf("taylorgreen: %v", err)
		}
		rel := math.Abs(nuEff-nu) / nu
		order := math.NaN()
		if prevErr > 0 {
			order = math.Log(prevErr/rel) / math.Log(float64(n)/float64(prevN))
		}
		if math.IsNaN(order) {
			fmt.Printf("%6d %14.6f %13.2e %12s\n", n, nuEff, rel, "—")
		} else {
			fmt.Printf("%6d %14.6f %13.2e %12.2f\n", n, nuEff, rel, order)
		}
		prevErr, prevN = rel, n
	}
	fmt.Println("\nLBM with BGK collision is second-order accurate in space;")
	fmt.Println("the measured order should approach 2 as N grows.")
}

// measureViscosity runs the vortex on an n×n grid and extracts the
// effective viscosity from the kinetic-energy decay.
func measureViscosity(n int, tau float64, steps int) (float64, error) {
	l, err := core.NewLattice(&lattice.D2Q9, n, n, 1, tau)
	if err != nil {
		return 0, err
	}
	// Diffusive scaling: u0 ∝ 1/N keeps the Mach-number (compressibility)
	// error shrinking together with the lattice error, revealing the
	// scheme's second-order convergence.
	u0 := 0.16 / float64(n)
	k := 2 * math.Pi / float64(n)
	// Consistent initialization: the analytic macroscopic field plus its
	// non-equilibrium part (core.InitFromMacro), which removes the
	// equilibrium-initialization startup transient.
	m := &core.MacroField{
		NX: n, NY: n, NZ: 1,
		Rho: make([]float64, n*n),
		Ux:  make([]float64, n*n),
		Uy:  make([]float64, n*n),
		Uz:  make([]float64, n*n),
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := m.Idx(x, y, 0)
			m.Rho[i] = 1
			m.Ux[i] = u0 * math.Sin(k*float64(x)) * math.Cos(k*float64(y))
			m.Uy[i] = -u0 * math.Cos(k*float64(x)) * math.Sin(k*float64(y))
		}
	}
	if err := l.InitFromMacro(m); err != nil {
		return 0, err
	}
	energy := func() float64 {
		e := 0.0
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				m := l.MacroAt(x, y, 0)
				e += m.Ux*m.Ux + m.Uy*m.Uy
			}
		}
		return e
	}
	// Equilibrium initialisation lacks the solution's non-equilibrium
	// part, which perturbs the first few steps; measure the decay rate
	// between two post-transient times instead of from t=0.
	burnin := steps / 4
	for s := 0; s < burnin; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	e1 := energy()
	for s := burnin; s < steps; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	e2 := energy()
	// e2/e1 = exp(−4 ν_eff k² Δt)  ⇒  ν_eff = −ln(e2/e1)/(4 k² Δt).
	return -math.Log(e2/e1) / (4 * k * k * float64(steps-burnin)), nil
}
