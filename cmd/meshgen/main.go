// Meshgen is SunwayLB's mesh generator front end (§IV-B): it accepts the
// three geometry input paths of the paper — CAD geometry as STL, synthetic
// terrain, and built-in outlines — voxelizes them onto a lattice grid, and
// reports the solid-cell statistics the solver will see. It can also emit
// the built-in shapes as STL for use with external tools.
//
// Usage:
//
//	meshgen -shape cylinder|sphere|suboff|city|hills [-nx ...] [-preview h.ppm] [-stl-out shape.stl]
//	meshgen -stl model.stl [-nx ...]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sunwaylb/internal/geometry"
	"sunwaylb/internal/vis"
)

func main() {
	log.SetFlags(0)
	var (
		shape   = flag.String("shape", "", "built-in shape: cylinder|sphere|suboff|city|hills")
		stlIn   = flag.String("stl", "", "STL file to voxelize (ASCII or binary)")
		nx      = flag.Int("nx", 96, "grid cells in x")
		ny      = flag.Int("ny", 96, "grid cells in y")
		nz      = flag.Int("nz", 32, "grid cells in z")
		preview = flag.String("preview", "", "write a solid-height preview PPM")
		stlOut  = flag.String("stl-out", "", "write the built-in shape as binary STL (mesh shapes only)")
		seed    = flag.Uint64("seed", 42, "seed for synthetic shapes")
	)
	flag.Parse()

	var solid geometry.Shape
	var mesh *geometry.TriMesh
	switch {
	case *stlIn != "":
		f, err := os.Open(*stlIn)
		if err != nil {
			log.Fatalf("meshgen: %v", err)
		}
		m, err := geometry.ReadSTL(f)
		f.Close()
		if err != nil {
			log.Fatalf("meshgen: %v", err)
		}
		fmt.Printf("read %d facets from %s\n", len(m.Tris), *stlIn)
		solid, mesh = m, m
	case *shape != "":
		var err error
		solid, mesh, err = builtin(*shape, *nx, *ny, *nz, *seed)
		if err != nil {
			log.Fatalf("meshgen: %v", err)
		}
	default:
		log.Fatal("meshgen: need -shape or -stl")
	}

	// Fit the grid to the shape bounds with a 10% margin.
	b := solid.Bounds()
	size := b.Size()
	h := maxf(size.X/float64(*nx), size.Y/float64(*ny), size.Z/float64(*nz)) * 1.1
	if h == 0 {
		log.Fatal("meshgen: degenerate shape bounds")
	}
	origin := geometry.Vec3{
		X: b.Min.X - (float64(*nx)*h-size.X)/2,
		Y: b.Min.Y - (float64(*ny)*h-size.Y)/2,
		Z: b.Min.Z - (float64(*nz)*h-size.Z)/2,
	}
	grid := geometry.VoxelGrid{NX: *nx, NY: *ny, NZ: *nz, Origin: origin, H: h}
	mask := geometry.Voxelize(solid, grid)
	frac := geometry.SolidFraction(mask)
	fmt.Printf("voxelized onto %d×%d×%d (h=%.4g): %.2f%% solid (%d cells)\n",
		*nx, *ny, *nz, h, frac*100, int(frac*float64(*nx**ny**nz)))

	if *preview != "" {
		if err := writeHeightPreview(*preview, mask, *nx, *ny, *nz); err != nil {
			log.Fatalf("meshgen: %v", err)
		}
		fmt.Printf("wrote height preview to %s\n", *preview)
	}
	if *stlOut != "" {
		if mesh == nil {
			log.Fatal("meshgen: -stl-out requires a mesh shape (city) or -stl input")
		}
		f, err := os.Create(*stlOut)
		if err != nil {
			log.Fatalf("meshgen: %v", err)
		}
		defer f.Close()
		if err := mesh.WriteBinarySTL(f); err != nil {
			log.Fatalf("meshgen: %v", err)
		}
		fmt.Printf("wrote %d facets to %s\n", len(mesh.Tris), *stlOut)
	}
}

func builtin(name string, nx, ny, nz int, seed uint64) (geometry.Shape, *geometry.TriMesh, error) {
	switch name {
	case "cylinder":
		return geometry.CylinderZ{CX: float64(nx) / 2, CY: float64(ny) / 2,
			Radius: float64(min2(nx, ny)) / 6, ZMin: 0, ZMax: float64(nz)}, nil, nil
	case "sphere":
		return geometry.Sphere{Center: geometry.Vec3{X: float64(nx) / 2, Y: float64(ny) / 2, Z: float64(nz) / 2},
			Radius: float64(min2(min2(nx, ny), nz)) / 4}, nil, nil
	case "suboff":
		return geometry.Suboff(float64(nx)/8, float64(ny)/2, float64(nz)/2,
			0.75*float64(nx), float64(min2(ny, nz))/8), nil, nil
	case "city":
		p := geometry.DefaultUrbanParams()
		p.SizeX, p.SizeY = float64(nx), float64(ny)
		p.MaxHeight = 0.7 * float64(nz)
		p.Seed = seed
		city := geometry.City(p)
		// Assemble the buildings into one mesh for STL export.
		var tris []geometry.Triangle
		for _, bld := range city {
			tris = append(tris, geometry.BoxMesh(bld.Bounds()).Tris...)
		}
		return city, geometry.NewTriMesh(tris), nil
	case "hills":
		return geometry.RollingHills(float64(nx), float64(ny), 0.3*float64(nz), 0.2*float64(nz), seed), nil, nil
	}
	return nil, nil, fmt.Errorf("unknown shape %q", name)
}

// writeHeightPreview renders the solid height of each column as an image.
func writeHeightPreview(path string, mask []bool, nx, ny, nz int) error {
	s := &vis.Slice{W: nx, H: ny, Data: make([]float64, nx*ny)}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			top := 0
			for z := 0; z < nz; z++ {
				if mask[(y*nx+x)*nz+z] {
					top = z + 1
				}
			}
			s.Data[y*nx+x] = float64(top)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return vis.WritePPM(f, s, 0, float64(nz))
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
