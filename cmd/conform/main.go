// Command conform runs the differential + metamorphic conformance suite:
// seeded random scenarios through every backend of the matrix (serial
// core, swlb optimization stages, gpu node model, multi-rank
// decompositions), the physics/metamorphic properties, and the mutation
// self-test that proves the oracles can catch injected numerical bugs.
//
// Usage:
//
//	conform [-seed N] [-cases N] [-run REGEXP] [-v]        # suite
//	conform -selftest [-seed N] [-cases N]                 # mutation power
//	conform -replay 'v1;seed=7;grid=8x9x8;...' -run NAME   # reproduce
//	conform -list                                          # oracle names
//
// Exit status: 0 all green, 1 oracle violation or undetected mutation,
// 2 usage/configuration error.
package main

import (
	"flag"
	"fmt"
	"os"

	"sunwaylb/internal/conform"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed     = flag.Int64("seed", 1, "case-generator seed (whole run is deterministic in it)")
		cases    = flag.Int("cases", 25, "number of generated cases (suite) or max scan per mutation (selftest)")
		runPat   = flag.String("run", "", "regexp selecting oracles (replay: exact oracle name)")
		replay   = flag.String("replay", "", "replay string (from a failure report) to reproduce standalone")
		selftest = flag.Bool("selftest", false, "run the mutation-sensitivity self-test")
		list     = flag.Bool("list", false, "list oracle names and exit")
		verbose  = flag.Bool("v", false, "log per-case progress")
	)
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	switch {
	case *list:
		for _, n := range conform.OracleNames() {
			fmt.Println(n)
		}
		for _, n := range conform.MutantOracleNames() {
			fmt.Println(n)
		}
		return 0

	case *replay != "":
		if *runPat == "" {
			fmt.Fprintln(os.Stderr, "conform: -replay needs -run with the exact oracle name")
			return 2
		}
		c, err := conform.ParseCase(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		err = conform.RunOracle(*runPat, c)
		switch {
		case err == nil:
			fmt.Printf("PASS %s on %s\n", *runPat, c)
			return 0
		case conform.IsSkip(err):
			fmt.Printf("SKIP %s on %s: %v\n", *runPat, c, err)
			return 0
		default:
			fmt.Printf("FAIL %s on %s:\n  %v\n", *runPat, c, err)
			return 1
		}

	case *selftest:
		dets, err := conform.SelfTest(*seed, *cases, logf)
		for _, d := range dets {
			fmt.Printf("mutant/%s: caught (%s)\n  replay: -replay '%s' -run 'mutant/%s'\n",
				d.Mutation.Name, d.Mutation.Detects, d.Replay, d.Mutation.Name)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("selftest: all %d injected bugs detected and shrunk\n", len(dets))
		return 0

	default:
		rep, err := conform.RunSuite(conform.Config{
			Seed: *seed, Cases: *cases, Run: *runPat, Logf: logf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Println(rep.Summary())
		for _, f := range rep.Failures {
			fmt.Printf("FAIL %s\n", f)
		}
		if !rep.OK() {
			return 1
		}
		return 0
	}
}
