package main

// Machine-readable benchmark mode (-json): runs a small fixed set of
// *measured* cases — as opposed to the model-driven figures — and writes
// BENCH_results.json so the repo accumulates a perf trajectory across
// commits. Each case reports the perf.Monitor digest (MLUPS, mean/p50/p99
// step time) plus case-specific counters; the distributed case derives its
// per-step samples from the trace subsystem's rank-0 step spans, so the
// bench output and the timeline tooling agree by construction.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sunwaylb/internal/core"
	"sunwaylb/internal/fault"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/patch"
	"sunwaylb/internal/perf"
	"sunwaylb/internal/psolve"
	"sunwaylb/internal/resil"
	"sunwaylb/internal/sunway"
	"sunwaylb/internal/swlb"
	"sunwaylb/internal/trace"
)

// CaseResult is one measured benchmark case.
type CaseResult struct {
	Name    string       `json:"name"`
	Summary perf.Summary `json:"summary"`
	// Goroutines is the peak goroutine count sampled while the case ran —
	// the case's concurrency footprint (rank goroutines, halo exchanges,
	// supervisor machinery), so throughput numbers can be read against
	// how much parallelism actually backed them.
	Goroutines int                 `json:"goroutines_peak"`
	Counters   map[string]int64    `json:"counters,omitempty"`
	Recovery   *perf.RecoveryStats `json:"recovery,omitempty"`
}

// BenchResults is the BENCH_results.json document.
type BenchResults struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is the scheduler's P count for this run: the actual
	// parallelism available, as opposed to NumCPU's hardware inventory.
	GoMaxProcs int          `json:"gomaxprocs"`
	Cases      []CaseResult `json:"cases"`
}

const (
	benchN     = 40 // kernel-case cube edge
	benchSteps = 20
)

// benchLattice builds a periodic fluid cube at equilibrium.
func benchLattice(nx, ny, nz int) (*core.Lattice, error) {
	l, err := core.NewLattice(&lattice.D3Q19, nx, ny, nz, 0.6)
	if err != nil {
		return nil, err
	}
	l.InitEquilibrium(1, 0.02, 0.01, 0.005)
	return l, nil
}

// kernelCounters annotates a kernel case with the parallelism actually
// used, so throughput comparisons across machines (and the pool-vs-serial
// acceptance check, which only applies on multi-core hosts) can be made
// from the recorded document alone.
func kernelCounters(cells int64, workers int) map[string]int64 {
	return map[string]int64{
		"cells":   cells,
		"workers": int64(workers),
		"num_cpu": int64(runtime.NumCPU()),
	}
}

// runKernel times the single-rank fused kernel (sequential or parallel).
// The parallel case always requests ≥ 2 workers — on a single-P runtime
// StepFusedParallel(0) would silently fall back to the serial path and
// the case would measure nothing new.
func runKernel(parallel bool) (CaseResult, error) {
	name := "kernel-fused"
	workers := 1
	if parallel {
		name = "kernel-parallel"
		workers = runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
	}
	l, err := benchLattice(benchN, benchN, benchN)
	if err != nil {
		return CaseResult{}, err
	}
	cells := int64(benchN) * benchN * benchN
	mon := perf.NewMonitor(cells)
	for s := 0; s < benchSteps; s++ {
		l.PeriodicAll()
		mon.StepStart()
		if parallel {
			l.StepFusedParallel(workers)
		} else {
			l.StepFused()
		}
		mon.StepEnd()
	}
	return CaseResult{
		Name:     name,
		Summary:  mon.SummaryStats(),
		Counters: kernelCounters(cells, workers),
	}, nil
}

// runKernelAA times the in-place AA-pattern kernel: unblocked, with
// cache-blocked tiles, or through the persistent worker pool.
func runKernelAA(name string, ty, tz, workers int) (CaseResult, error) {
	l, err := benchLattice(benchN, benchN, benchN)
	if err != nil {
		return CaseResult{}, err
	}
	l.EnableAA()
	if ty > 0 || tz > 0 {
		l.SetAATiles(ty, tz)
	}
	var pool *core.Pool
	if workers > 1 {
		pool = core.NewPool(l, workers)
		defer pool.Close()
		workers = pool.Workers()
	} else {
		workers = 1
	}
	cells := int64(benchN) * benchN * benchN
	mon := perf.NewMonitor(cells)
	for s := 0; s < benchSteps; s++ {
		l.PeriodicAll()
		mon.StepStart()
		if pool != nil {
			pool.Step()
		} else {
			l.StepFused()
		}
		mon.StepEnd()
	}
	return CaseResult{
		Name:     name,
		Summary:  mon.SummaryStats(),
		Counters: kernelCounters(cells, workers),
	}, nil
}

// runSunwayCG times the simulated SW26010 core group on one subdomain;
// the samples are the engine's modelled step times and the counters are
// its cumulative DMA / register-communication traffic.
func runSunwayCG() (CaseResult, error) {
	const nx, ny, nz = 32, 32, 64
	l, err := benchLattice(nx, ny, nz)
	if err != nil {
		return CaseResult{}, err
	}
	eng, err := swlb.New(l, sunway.SW26010, swlb.DefaultOptions())
	if err != nil {
		return CaseResult{}, err
	}
	mon := perf.NewMonitor(int64(nx) * ny * nz)
	for s := 0; s < benchSteps; s++ {
		l.PeriodicAll()
		mon.Record(eng.Step())
	}
	return CaseResult{
		Name:    "sunway-sim-cg",
		Summary: mon.SummaryStats(),
		Counters: map[string]int64{
			"dma_bytes":      eng.CG.Counters.DMABytes,
			"intercpe_bytes": eng.CG.Counters.InterCPEBytes,
			"clean_columns":  int64(eng.CleanColumns()),
			"mixed_columns":  int64(eng.MixedColumns()),
		},
	}, nil
}

// runDistributed times a 2×2-rank periodic run. Per-step wall samples are
// extracted from the trace subsystem (rank-0 step spans) rather than
// re-instrumenting the solver, so this case also exercises the tracer
// end-to-end.
func runDistributed() (CaseResult, error) {
	const gnx, gny, gnz = 48, 48, 24
	tracer := trace.New(trace.Options{})
	opts := psolve.Options{
		GNX: gnx, GNY: gny, GNZ: gnz,
		PX: 2, PY: 2,
		Tau:       0.6,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Init: func(gx, gy, gz int) (rho, ux, uy, uz float64) {
			return 1, 0.02, 0.01, 0.005
		},
		Trace: tracer,
	}
	if _, err := psolve.Run(opts, benchSteps); err != nil {
		return CaseResult{}, err
	}
	mon := perf.NewMonitor(int64(gnx) * gny * gnz)
	events := tracer.Events()
	for _, d := range stepDurations(events, 0) {
		mon.Record(d)
	}
	return CaseResult{
		Name:    "distributed-2x2",
		Summary: mon.SummaryStats(),
		Counters: map[string]int64{
			"ranks":        4,
			"trace_events": int64(len(events)),
		},
	}, nil
}

// runSupervisedHotswap times the memory-tier recovery path: a 2×2-rank
// supervised run with the full L1/L2/L3 snapshot hierarchy that loses
// one rank mid-flight and hot-swaps it back from buddy/parity deposits.
// The Recovery block carries MTTR, downtime and the per-level snapshot
// byte ledger into BENCH_results.json.
func runSupervisedHotswap() (CaseResult, error) {
	const gnx, gny, gnz = 48, 48, 24
	tracer := trace.New(trace.Options{})
	opts := psolve.Options{
		GNX: gnx, GNY: gny, GNZ: gnz,
		PX: 2, PY: 2,
		Tau:       0.6,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Init: func(gx, gy, gz int) (rho, ux, uy, uz float64) {
			return 1, 0.02, 0.01, 0.005
		},
		OnTheFly: true,
		Trace:    tracer,
	}
	plan := fault.Plan{
		Seed:         11,
		GroupCrashes: []fault.GroupCrash{{Group: 0, Count: 1, Step: benchSteps / 2}},
	}
	_, stats, err := psolve.Supervise(psolve.SupervisorOptions{
		Opts:          opts,
		Steps:         benchSteps,
		MaxRestarts:   3,
		SnapshotEvery: 2,
		Levels:        resil.L1 | resil.L2 | resil.L3,
		GroupSize:     2,
		SpareRanks:    2,
		Injector:      fault.NewInjector(plan),
	})
	if err != nil {
		return CaseResult{}, err
	}
	mon := perf.NewMonitor(int64(gnx) * gny * gnz)
	for _, d := range stepDurations(tracer.Events(), 0) {
		mon.Record(d)
	}
	return CaseResult{
		Name:    "supervised-hotswap",
		Summary: mon.SummaryStats(),
		Counters: map[string]int64{
			"ranks":    4,
			"l1_bytes": stats.SnapshotBytes[0],
			"l2_bytes": stats.SnapshotBytes[1],
			"l3_bytes": stats.SnapshotBytes[2],
			"l4_bytes": stats.SnapshotBytes[3],
		},
		Recovery: &stats,
	}, nil
}

// runPatchHetero times the patch-decomposed world on a heterogeneous
// worker roster (two CPU cores — one an 8× straggler — a simulated
// Sunway core group and the GPU node model). A deterministic cost model
// stands in for wall-clock noise so the balancer's decisions, and hence
// the migration counters and imbalance trajectory recorded here, are
// reproducible across runs; per-step wall samples still come from the
// rank-0 trace spans like the other distributed cases.
func runPatchHetero() (CaseResult, error) {
	const gnx, gny, gnz = 48, 48, 24
	const steps = 30
	tracer := trace.New(trace.Options{})
	spc := [4]float64{1.0, 8.0, 0.4, 0.15} // seconds per cell ×1e-8, per worker
	opts := patch.Options{
		GNX: gnx, GNY: gny, GNZ: gnz,
		TX: 4, TY: 2, TZ: 1,
		Tau:       0.6,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Init: func(gx, gy, gz int) (rho, ux, uy, uz float64) {
			return 1, 0.02, 0.01, 0.005
		},
		Workers: []patch.Worker{
			{Backend: patch.BackendCore},
			{Backend: patch.BackendCore}, // the straggler, per the cost model
			{Backend: patch.BackendSunway},
			{Backend: patch.BackendGPU},
		},
		RebalanceEvery: 5,
		CostModel: func(worker int, p patch.Patch) float64 {
			return spc[worker] * float64(p.Cells()) * 1e-8
		},
		Trace: tracer,
	}
	_, stats, err := patch.Run(opts, steps)
	if err != nil {
		return CaseResult{}, err
	}
	mon := perf.NewMonitor(int64(gnx) * gny * gnz)
	for _, d := range stepDurations(tracer.Events(), 0) {
		mon.Record(d)
	}
	counters := map[string]int64{
		"patches":              int64(stats.Patches),
		"workers":              int64(stats.Workers),
		"migrations":           int64(stats.Migrations),
		"rebalances":           int64(stats.Rebalances),
		"imbalance_pre_milli":  int64(stats.ImbalancePre * 1000),
		"imbalance_post_milli": int64(stats.ImbalancePost * 1000),
	}
	for p, m := range stats.PatchMLUPS {
		counters[fmt.Sprintf("patch%d_mlups_milli", p)] = int64(m * 1000)
	}
	if stats.ImbalancePost >= stats.ImbalancePre {
		return CaseResult{}, fmt.Errorf("patch-hetero: balancer did not reduce imbalance (pre %.3f, post %.3f)",
			stats.ImbalancePre, stats.ImbalancePost)
	}
	return CaseResult{
		Name:     "patch-hetero",
		Summary:  mon.SummaryStats(),
		Counters: counters,
	}, nil
}

// stepDurations pairs Begin/End events on the given rank's wall-clock
// step track into per-step durations, in recording order. The step track
// also carries nested compute/bc spans, so the span name is tracked
// through the nesting stack and only "step" spans are reported.
func stepDurations(events []trace.Event, rank int) []float64 {
	type frame struct {
		name string
		ts   float64
	}
	var out []float64
	var open []frame
	for _, e := range events {
		if e.Rank != rank || e.Clock != trace.Wall || e.Track != trace.TrackStep {
			continue
		}
		switch e.Kind {
		case trace.KindBegin:
			open = append(open, frame{e.Name, e.TS})
		case trace.KindEnd:
			if n := len(open); n > 0 {
				f := open[n-1]
				open = open[:n-1]
				if f.name == "step" {
					out = append(out, e.TS-f.ts)
				}
			}
		}
	}
	return out
}

// sampleGoroutines polls the runtime's goroutine count in the background
// until stopped and reports the observed peak.
func sampleGoroutines() (stop func() int) {
	quit := make(chan struct{})
	out := make(chan int, 1)
	go func() {
		peak := runtime.NumGoroutine()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-quit:
				out <- peak
				return
			case <-tick.C:
				if n := runtime.NumGoroutine(); n > peak {
					peak = n
				}
			}
		}
	}()
	return func() int {
		close(quit)
		return <-out
	}
}

// checkBaseline compares the fused-kernel throughput of this run against
// a committed baseline document and fails on a regression of more than
// 10%. Only the serial fused kernel is gated: it is the one deterministic,
// machine-independent-ish case, whereas the concurrent and modelled cases
// are too noisy for a hard threshold.
func checkBaseline(res *BenchResults, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("benchsuite: reading baseline: %w", err)
	}
	var base BenchResults
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchsuite: parsing baseline %s: %w", baselinePath, err)
	}
	find := func(doc *BenchResults, name string) *CaseResult {
		for i := range doc.Cases {
			if doc.Cases[i].Name == name {
				return &doc.Cases[i]
			}
		}
		return nil
	}
	const gated = "kernel-fused"
	b, n := find(&base, gated), find(res, gated)
	if b == nil || b.Summary.MLUPS <= 0 {
		fmt.Printf("baseline %s has no %s case; skipping regression gate\n", baselinePath, gated)
		return nil
	}
	if n == nil {
		return fmt.Errorf("benchsuite: run produced no %s case to gate", gated)
	}
	floor := 0.9 * b.Summary.MLUPS
	if n.Summary.MLUPS < floor {
		return fmt.Errorf("benchsuite: %s regressed >10%%: %.2f MLUPS vs baseline %.2f (floor %.2f)",
			gated, n.Summary.MLUPS, b.Summary.MLUPS, floor)
	}
	fmt.Printf("baseline gate ok: %s %.2f MLUPS vs baseline %.2f (floor %.2f)\n",
		gated, n.Summary.MLUPS, b.Summary.MLUPS, floor)
	return nil
}

// runJSON executes every measured case and writes the results document.
// If baselinePath is non-empty the fused-kernel throughput is additionally
// gated against that committed document.
func runJSON(path, baselinePath string) error {
	res := BenchResults{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	type step struct {
		name string
		run  func() (CaseResult, error)
	}
	for _, s := range []step{
		{"kernel-fused", func() (CaseResult, error) { return runKernel(false) }},
		{"kernel-parallel", func() (CaseResult, error) { return runKernel(true) }},
		{"kernel-aa", func() (CaseResult, error) { return runKernelAA("kernel-aa", 0, 0, 1) }},
		{"kernel-aa-blocked", func() (CaseResult, error) { return runKernelAA("kernel-aa-blocked", 8, 40, 1) }},
		{"kernel-aa-pool-4", func() (CaseResult, error) { return runKernelAA("kernel-aa-pool-4", 8, 40, 4) }},
		{"sunway-sim-cg", runSunwayCG},
		{"distributed-2x2", runDistributed},
		{"supervised-hotswap", runSupervisedHotswap},
		{"patch-hetero", runPatchHetero},
	} {
		peak := sampleGoroutines()
		c, err := s.run()
		c.Goroutines = peak()
		if err != nil {
			return fmt.Errorf("benchsuite: case %s: %w", s.name, err)
		}
		fmt.Printf("%-18s %6.2f MLUPS  mean %.3g s/step (p50 %.3g, p99 %.3g)  %d goroutines peak\n",
			c.Name, c.Summary.MLUPS, c.Summary.MeanSec, c.Summary.P50Sec, c.Summary.P99Sec, c.Goroutines)
		res.Cases = append(res.Cases, c)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cases)\n", path, len(res.Cases))
	if baselinePath != "" {
		return checkBaseline(&res, baselinePath)
	}
	return nil
}
