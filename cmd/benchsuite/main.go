// Benchsuite regenerates every table and figure of the paper's evaluation
// section (§V) from the calibrated machine, network and kernel models:
//
//	fig8     — optimization-stage ablation on Sunway TaihuLight
//	fig11    — GPU-node optimization ablation
//	fig13    — weak scaling on Sunway TaihuLight (headline: 11245 GLUPS)
//	fig14    — strong scaling on TaihuLight (cylinder / Suboff / urban)
//	fig15    — weak scaling on the new Sunway (headline: 6583 GLUPS)
//	fig16    — strong scaling on the new Sunway (3 cases)
//	fig17    — GPU-cluster strong scaling
//	roofline — the §V-A roofline/bandwidth-utilization arithmetic
//	all      — everything above
//
// Each experiment prints the modelled series next to the paper's reported
// values so the reproduction quality is visible at a glance.
package main

import (
	"flag"
	"fmt"
	"os"

	"sunwaylb/internal/gpu"
	"sunwaylb/internal/network"
	"sunwaylb/internal/perf"
	"sunwaylb/internal/scaling"
	"sunwaylb/internal/sunway"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig8|fig11|fig13|fig14|fig15|fig16|fig17|roofline|ablation|all")
	jsonOut := flag.String("json", "", "run the measured benchmark cases and write machine-readable results (e.g. BENCH_results.json)")
	baseline := flag.String("baseline", "", "with -json: committed BENCH_results.json to gate against (fail if fused-kernel MLUPS regresses >10%)")
	flag.Parse()

	if *jsonOut != "" {
		if err := runJSON(*jsonOut, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		return
	}

	runners := map[string]func(){
		"fig8":     fig8,
		"fig11":    fig11,
		"fig13":    fig13,
		"fig14":    fig14,
		"fig15":    fig15,
		"fig16":    fig16,
		"fig17":    fig17,
		"roofline": roofline,
		"ablation": ablation,
	}
	if *exp == "all" {
		for _, name := range []string{"roofline", "fig8", "fig11", "fig13", "fig14", "fig15", "fig16", "fig17", "ablation"} {
			runners[name]()
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchsuite: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	run()
}

func header(title string) {
	fmt.Println("================================================================")
	fmt.Println(title)
	fmt.Println("================================================================")
}

func roofline() {
	header("Roofline arithmetic (§V-A)")
	perCG := perf.TaihuLight.Roofline()
	fmt.Printf("SW26010 CG:      %.1f GB/s ÷ %.0f B/LUP = %.1f MLUPS (paper: 90.4)\n",
		perf.TaihuLight.CGBandwidth/1e9, perf.BytesPerLUP, perCG.MLUPS())
	fmt.Printf("160000 CGs ceiling: %.0f GLUPS (paper: 14464)\n", perCG.GLUPS()*160000)
	fmt.Printf("measured 11245 GLUPS → utilization %.1f%% (paper: 77%%)\n",
		perf.BandwidthUtilization(perf.LUPS(11245e9/160000), perf.TaihuLight.CGBandwidth)*100)
	proCG := perf.NewSunway.Roofline()
	fmt.Printf("SW26010-Pro CG:  %.1f GB/s ÷ %.0f B/LUP = %.1f MLUPS\n",
		perf.NewSunway.CGBandwidth/1e9, perf.BytesPerLUP, proCG.MLUPS())
	fmt.Printf("measured 6583 GLUPS over 60000 CGs → utilization %.1f%% (paper: 81.4%%)\n",
		perf.BandwidthUtilization(perf.LUPS(6583e9/60000), perf.NewSunway.CGBandwidth)*100)
}

func fig8() {
	header("Fig. 8 — optimization ablation, Sunway TaihuLight (one CG, 500×700×100)")
	stages := scaling.Fig8Ablation(sunway.SW26010)
	fmt.Printf("%-34s %12s %10s\n", "stage", "step time", "speedup")
	for _, s := range stages {
		fmt.Printf("%-34s %10.3f s %9.1f×\n", s.Name, s.StepTime, s.Speedup)
	}
	fmt.Printf("paper: 73.6 s → 0.426 s, 172× total\n")
}

func fig11() {
	header("Fig. 11 — GPU-node optimization ablation (1400×2800×100, 8×RTX 3090)")
	stages := gpu.Fig11Ablation(gpu.RTX3090Cluster)
	fmt.Printf("%-22s %12s %10s\n", "stage", "step time", "speedup")
	for _, s := range stages {
		fmt.Printf("%-22s %10.4f s %9.1f×\n", s.Name, s.StepTime, s.Speedup)
	}
	speedup, util := gpu.RTX3090Cluster.Headline()
	fmt.Printf("modelled: %.0f× node speedup, %.1f%% kernel bandwidth utilization\n", speedup, util*100)
	fmt.Printf("paper:    191× and 83.8%%; 1 GPU vs 1 core: modelled %.0f× (paper ≈200×)\n",
		gpu.RTX3090Cluster.SpeedupOneGPUvsOneCore())
}

func printPoints(pts []scaling.Point) {
	fmt.Printf("%10s %12s %14s %12s %10s %8s %8s\n",
		"CGs", "cores", "cells", "step time", "GLUPS", "eff", "BW util")
	for _, p := range pts {
		fmt.Printf("%10d %12d %14.3e %10.1f ms %10.2f %7.1f%% %7.1f%%\n",
			p.CGs, p.Cores, float64(p.Cells), p.StepTime*1e3,
			p.Rate.GLUPS(), p.Efficiency*100, p.BWUtil*100)
	}
}

func fig13() {
	header("Fig. 13 — weak scaling, Sunway TaihuLight (500×700×100 per CG)")
	m := scaling.TaihuLightModel()
	pts := m.WeakScaling(scaling.Fig13Block[0], scaling.Fig13Block[1], scaling.Fig13Block[2], scaling.Fig13Grids)
	printPoints(pts)
	last := pts[len(pts)-1]
	fmt.Printf("endpoint: %.0f GLUPS, %.2f PFlops (paper: 11245 GLUPS, 4.7 PFlops, 77%% BW, ≥94%% eff)\n",
		last.Rate.GLUPS(), last.PFlops)
}

func fig14() {
	header("Fig. 14 — strong scaling, Sunway TaihuLight (16384 → 160000 CGs)")
	m := scaling.TaihuLightModel()
	for _, c := range scaling.Fig14Cases {
		fmt.Printf("\n-- %s (%d×%d×%d), paper endpoint efficiency %.1f%% --\n",
			c.Name, c.GNX, c.GNY, c.GNZ, c.PaperEff*100)
		printPoints(m.StrongScaling(c.GNX, c.GNY, c.GNZ, scaling.Fig14Grids))
	}
}

func fig15() {
	header("Fig. 15 — weak scaling, new Sunway (1000×700×100 per CG)")
	m := scaling.NewSunwayModel()
	pts := m.WeakScaling(scaling.Fig15Block[0], scaling.Fig15Block[1], scaling.Fig15Block[2], scaling.Fig15Grids)
	printPoints(pts)
	last := pts[len(pts)-1]
	fmt.Printf("endpoint: %.0f GLUPS, %.2f PFlops (paper: 6583 GLUPS, 2.76 PFlops, 81.4%% BW)\n",
		last.Rate.GLUPS(), last.PFlops)
}

func fig16() {
	header("Fig. 16 — strong scaling, new Sunway (three cases)")
	m := scaling.NewSunwayModel()
	for _, c := range scaling.Fig16Cases {
		note := ""
		if c.PaperEff > 0 {
			note = fmt.Sprintf(", paper endpoint efficiency %.1f%%", c.PaperEff*100)
		}
		fmt.Printf("\n-- %s (%d×%d×%d)%s --\n", c.Name, c.GNX, c.GNY, c.GNZ, note)
		printPoints(m.StrongScaling(c.GNX, c.GNY, c.GNZ, c.Grids))
	}
}

func fig17() {
	header("Fig. 17 — GPU-cluster strong scaling (1400×2800×100, 1 → 8 nodes)")
	pts := gpu.RTX3090Cluster.StrongScaling(1400, 2800, 100, []int{1, 2, 4, 8}, network.GPUClusterNet)
	fmt.Printf("%8s %6s %12s %10s %8s %8s\n", "nodes", "GPUs", "step time", "GLUPS", "eff", "BW util")
	for _, p := range pts {
		fmt.Printf("%8d %6d %10.2f ms %10.1f %7.1f%% %7.1f%%\n",
			p.Nodes, p.GPUs, p.StepTime*1e3, p.Rate.GLUPS(), p.Efficiency*100, p.BWUtil*100)
	}
	fmt.Printf("paper: 86.3%% strong-scaling efficiency at 8 nodes\n")
}

func ablation() {
	header("Design-choice ablations (§IV-C, quantifying the paper's prose)")
	m := scaling.TaihuLightModel()

	fmt.Println("\n-- decomposition (Fig. 13 mesh, 160000 ranks) --")
	fmt.Printf("%-18s %10s %14s %8s %12s\n", "scheme", "grid", "halo cells", "z-run", "step time")
	for _, p := range m.DecompositionAblation(500*400, 700*400, 100, 160000) {
		if !p.Feasible {
			fmt.Printf("%-18s infeasible: %s\n", p.Name, p.Reason)
			continue
		}
		fmt.Printf("%-18s %4d×%d×%d %14d %8d %10.3f s\n",
			p.Name, p.PX, p.PY, p.PZ, p.HaloCells, p.RunLen, p.StepTime)
	}

	fmt.Println("\n-- z-run length (the 64×3×70 blocking of §IV-C-2) --")
	fmt.Printf("%6s %12s %10s %12s\n", "bz", "MLUPS/CG", "BW util", "fits 64KB?")
	for _, p := range m.BlockLengthSweep([]int{4, 8, 16, 35, 70, 140, 512}) {
		fmt.Printf("%6d %12.1f %9.1f%% %12v\n", p.BZ, p.Rate.MLUPS(), p.BWUtil*100, p.LDMFitsSW26010)
	}

	fmt.Println("\n-- SoA vs AoS population layout (§IV-A) --")
	soa, aos, ratio := scaling.AoSPenalty(sunway.SW26010)
	fmt.Printf("SoA: %.1f MLUPS/CG   AoS: %.1f MLUPS/CG   penalty: %.1f×\n",
		soa.MLUPS(), aos.MLUPS(), ratio)

	fmt.Println("\n-- on-the-fly halo exchange gain vs block size (400×400 ranks) --")
	fmt.Printf("%12s %14s %14s %8s\n", "block", "sequential", "on-the-fly", "gain")
	for _, p := range m.OnTheFlySweep([][2]int{{500, 700}, {125, 175}, {64, 64}, {32, 32}}, 100, 400, 400) {
		fmt.Printf("%5d×%-6d %12.2f ms %12.2f ms %7.1f%%\n",
			p.BlockX, p.BlockY, p.Sequential*1e3, p.OnTheFly*1e3, p.Gain*100)
	}
}
