// Lbmserve is the always-on multi-tenant simulation daemon: it serves
// the cases/*.json job schema over an HTTP/JSON API and runs every job
// under its own self-healing supervisor in a panic-containing bulkhead,
// with admission control, weighted fair scheduling, per-job fault
// isolation and a crash-safe journal (see internal/serve).
//
// Usage:
//
//	lbmserve -addr :8080 -data ./lbmserve-data -workers 4
//
// API:
//
//	POST   /jobs             submit a job (202; 429 + Retry-After when full)
//	GET    /jobs             list jobs
//	GET    /jobs/{id}        job status
//	DELETE /jobs/{id}        cancel a job
//	GET    /jobs/{id}/result result digest (409 until done)
//	GET    /healthz          liveness (503 while draining)
//	GET    /metrics          fleet metrics JSON
//
// The first SIGINT/SIGTERM drains gracefully: admission closes, running
// jobs checkpoint through the L1–L4 hierarchy, the journal stays
// replayable, and the process exits 0. A second signal hard-exits 130.
// Restarting over the same -data dir resumes interrupted work.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sunwaylb/internal/serve"
)

func main() {
	log.SetFlags(0)
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		dataDir   = flag.String("data", "lbmserve-data", "data directory: job journal and drain checkpoints")
		workers   = flag.Int("workers", 0, "worker slots shared across all tenants (default 2)")
		shards    = flag.Int("shards", 0, "scheduler shards (default 2)")
		perTenant = flag.Int("queue-per-tenant", 0, "per-tenant admission queue bound (default 16)")
		maxQueued = flag.Int("max-queued", 0, "global queued-job cap (default shards × per-tenant bound)")
		timeout   = flag.Duration("default-timeout", 0, "deadline for jobs that set no timeout_sec (default 10m)")
		drainWait = flag.Duration("drain-timeout", time.Minute, "max time to wait for running jobs to drain on shutdown")
		traceBuf  = flag.Int("trace-buf", 0, "service trace ring size per rank (default 4096)")
		weights   = flag.String("weights", "", "WRR dequeue weights, e.g. 'alice=3,bob=1' (missing tenants weigh 1)")
	)
	flag.Parse()

	tw, err := parseWeights(*weights)
	if err != nil {
		log.Fatalf("lbmserve: %v", err)
	}
	s, err := serve.NewServer(serve.Config{
		Workers:        *workers,
		Shards:         *shards,
		QueuePerTenant: *perTenant,
		MaxQueued:      *maxQueued,
		TenantWeights:  tw,
		DataDir:        *dataDir,
		DefaultTimeout: *timeout,
		TraceBuf:       *traceBuf,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatalf("lbmserve: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.ListenAndServe() }()
	log.Printf("lbmserve: serving on %s (data %s)", *addr, *dataDir)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-httpErr:
		log.Fatalf("lbmserve: http: %v", err)
	case got := <-sig:
		log.Printf("lbmserve: %v: draining (signal again to hard-exit)", got)
	}
	go func() {
		<-sig
		log.Print("lbmserve: second signal: hard exit")
		os.Exit(130)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Stop accepting HTTP first, then drain jobs: running work
	// checkpoints and the journal keeps interrupted jobs replayable.
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("lbmserve: http shutdown: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		log.Fatalf("lbmserve: %v", err)
	}
	log.Print("lbmserve: drained; interrupted jobs resume on next start")
}

// parseWeights reads 'tenant=weight,tenant=weight' into a map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad -weights entry %q, want tenant=weight", kv)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad weight %q for tenant %q (want a positive integer)", val, name)
		}
		out[name] = w
	}
	return out, nil
}
