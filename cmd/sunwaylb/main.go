// Sunwaylb is the SunwayLB-Go solver front end: it assembles the
// pre-processing (geometry + boundary conditions), the D3Q19 LBM solver
// (serial/goroutine-parallel, or distributed over simulated MPI ranks) and
// the post-processing (PPM slices, checkpoints) into one command — the
// holistic framework of Fig. 4.
//
// Usage:
//
//	sunwaylb -preset cavity|channel|cylinder|urban|suboff [flags]
//	sunwaylb -case case.json [flags]
//
// Examples:
//
//	sunwaylb -preset cylinder -steps 4000 -out cyl
//	sunwaylb -preset channel -decomp 2x2 -steps 500
//	sunwaylb -preset cavity -checkpoint-every 500 -checkpoint state.cpk
//	sunwaylb -preset channel -decomp 2x2 -steps 500 -checkpoint-every 100 \
//	    -checkpoint state.cpk -max-restarts 2 \
//	    -fault-plan 'seed=42;crash@rank=1,step=250'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sunwaylb/internal/boundary"
	"sunwaylb/internal/config"
	"sunwaylb/internal/core"
	"sunwaylb/internal/fault"
	"sunwaylb/internal/geometry"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/patch"
	"sunwaylb/internal/perf"
	"sunwaylb/internal/psolve"
	"sunwaylb/internal/resil"
	"sunwaylb/internal/sunway"
	"sunwaylb/internal/swio"
	"sunwaylb/internal/swlb"
	"sunwaylb/internal/trace"
	"sunwaylb/internal/vis"
)

// exitInterrupted is the exit code of a run stopped by SIGINT/SIGTERM
// after saving its state: distinct from success (0) and failure (1), so
// schedulers can tell "re-submit with -restore" from "broken".
const exitInterrupted = 3

// errInterrupted marks a run that stopped at a signal after writing its
// checkpoint.
var errInterrupted = errors.New("interrupted by signal")

// signalContext returns a context canceled by the first SIGINT/SIGTERM.
// The first signal asks the run to checkpoint and exit (code 3); a
// second signal hard-exits immediately with the conventional 130.
func signalContext() (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		log.Print("sunwaylb: signal: checkpointing and exiting (signal again to hard-exit)")
		cancel()
		<-ch
		os.Exit(130)
	}()
	return ctx, func() { signal.Stop(ch); cancel() }
}

func main() {
	log.SetFlags(0)

	// Case selection and size/step overrides.
	var (
		preset   = flag.String("preset", "", "built-in case: cavity|channel|cylinder|urban|suboff")
		caseFile = flag.String("case", "", "JSON case file (dimensions, tau/Re, steps)")
		nx       = flag.Int("nx", 0, "override x cells")
		ny       = flag.Int("ny", 0, "override y cells")
		nz       = flag.Int("nz", 0, "override z cells")
		steps    = flag.Int("steps", 0, "override time steps")
	)

	// Execution model.
	var (
		decomp    = flag.String("decomp", "", "run distributed as PXxPY simulated MPI ranks (e.g. 2x2), or 'patch' for patch decomposition")
		useSunway = flag.Bool("sunway", false, "with -decomp: run each rank's kernel on a simulated SW26010 core group")

		patchTiles     = flag.String("patch-tiles", "2x2x1", "with -decomp=patch: TXxTYxTZ patch tiling of the domain")
		patchWorkers   = flag.String("patch-workers", "core,core", "with -decomp=patch: worker roster, e.g. 'core,core*4,sunway,gpu' (*F = straggle factor)")
		rebalanceEvery = flag.Int("rebalance-every", 0, "with -decomp=patch: balance-check interval in steps (0 = never rebalance)")
	)

	// Checkpoint/restart and fault tolerance.
	var (
		cpPath      = flag.String("checkpoint", "", "checkpoint file path")
		cpEvery     = flag.Int("checkpoint-every", 0, "checkpoint interval in steps")
		restore     = flag.String("restore", "", "resume from a checkpoint file")
		faultPlan   = flag.String("fault-plan", "", "with -decomp: deterministic fault plan, e.g. 'seed=42;crash@rank=1,step=50;corrupt@ckpt=2' (see internal/fault)")
		maxRestarts = flag.Int("max-restarts", 0, "with -decomp: recovery budget of the self-healing supervisor")
		allowShrink = flag.Bool("allow-shrink", false, "with -decomp: re-decompose onto fewer ranks after a rank death")
		spareRanks  = flag.Int("spare-ranks", 0, "with -decomp: hot-swap budget — dead ranks replaced from in-memory snapshots without shrinking")
		ckptLevels  = flag.String("ckpt-levels", "", "with -decomp: active checkpoint levels, e.g. '123' or '1234' (1=local 2=buddy 3=parity 4=disk; empty = disk only)")
		ckptGroup   = flag.Int("ckpt-group", 0, "with -decomp: parity-group size for L2/L3 snapshots (default 4)")
		snapEvery   = flag.Int("snapshot-every", 0, "with -decomp: in-memory snapshot wave interval in steps (0 = off)")
		detector    = flag.String("detector", "", "with -decomp: failure detector, 'deadline' (fixed timeout) or 'phi' (accrual heartbeats)")
	)

	// Output and observability.
	var (
		out        = flag.String("out", "", "output prefix for PPM slices")
		tracePath  = flag.String("trace", "", "write a Chrome trace-event JSON timeline (open in Perfetto / chrome://tracing)")
		traceBuf   = flag.Int("trace-buf", 0, "with -trace: max buffered events per rank, ring-overwritten beyond (0 = unbounded)")
		reportSecs = flag.Float64("report", 2, "progress report interval in seconds")
	)
	flag.Parse()

	cs, err := buildCase(*preset, *caseFile)
	if err != nil {
		log.Fatalf("sunwaylb: %v", err)
	}
	if *nx > 0 {
		cs.cfg.NX = *nx
	}
	if *ny > 0 {
		cs.cfg.NY = *ny
	}
	if *nz > 0 {
		cs.cfg.NZ = *nz
	}
	if *steps > 0 {
		cs.cfg.Steps = *steps
	}
	if err := cs.cfg.Validate(); err != nil {
		log.Fatalf("sunwaylb: %v", err)
	}

	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New(trace.Options{MaxEventsPerRank: *traceBuf})
	}

	ctx, stopSignals := signalContext()
	defer stopSignals()
	// exitWith funnels every run's outcome through one place: an
	// interrupted run still gets its trace written, then exits 3.
	exitWith := func(err error) {
		if err != nil && !errors.Is(err, errInterrupted) {
			log.Fatalf("sunwaylb: %v", err)
		}
		if terr := finishTrace(tracer, *tracePath); terr != nil {
			log.Fatalf("sunwaylb: %v", terr)
		}
		if err != nil {
			log.Print("sunwaylb: interrupted; checkpoint saved where configured (exit 3)")
			os.Exit(exitInterrupted)
		}
	}

	if *decomp != "" {
		d := distOpts{
			decomp:      *decomp,
			out:         *out,
			useSunway:   *useSunway,
			cpPath:      *cpPath,
			cpEvery:     *cpEvery,
			restore:     *restore,
			faultPlan:   *faultPlan,
			maxRestarts: *maxRestarts,
			allowShrink: *allowShrink,
			spareRanks:  *spareRanks,
			ckptLevels:  *ckptLevels,
			ckptGroup:   *ckptGroup,
			snapEvery:   *snapEvery,
			detector:    *detector,
			tracer:      tracer,

			patchTiles:     *patchTiles,
			patchWorkers:   *patchWorkers,
			rebalanceEvery: *rebalanceEvery,
		}
		exitWith(runDistributed(ctx, cs, d))
		return
	}
	if *faultPlan != "" {
		log.Fatal("sunwaylb: -fault-plan requires -decomp (faults target simulated MPI ranks)")
	}
	exitWith(runLocal(ctx, cs, *out, *cpPath, *cpEvery, *restore, *reportSecs, tracer))
}

// finishTrace serialises the recorded timeline as Chrome trace-event
// JSON and prints the aggregate analysis (per-phase shares, imbalance,
// stragglers). A nil tracer is a no-op.
func finishTrace(tracer *trace.Tracer, path string) error {
	if tracer == nil {
		return nil
	}
	events := tracer.Events()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote trace %s (%d events", path, len(events))
	if d := tracer.Dropped(); d > 0 {
		fmt.Printf(", %d overwritten", d)
	}
	fmt.Println("); open in https://ui.perfetto.dev")
	fmt.Print(trace.Analyze(events).String())
	return nil
}

// caseSetup bundles everything a preset defines.
type caseSetup struct {
	cfg   config.Case
	walls func(x, y, z int) bool
	init  func(x, y, z int) (rho, ux, uy, uz float64)
	bcs   func() *boundary.Set
	// faceBC mirrors bcs for the distributed runner.
	faceBC    map[core.Face]boundary.Condition
	periodicY bool
	periodicZ bool
	smag      float64
}

func buildCase(preset, caseFile string) (*caseSetup, error) {
	if preset == "" && caseFile == "" {
		return nil, fmt.Errorf("need -preset or -case (try -preset cavity)")
	}
	var cs *caseSetup
	if preset != "" {
		var err error
		cs, err = builtinPreset(preset)
		if err != nil {
			return nil, err
		}
	}
	if caseFile != "" {
		f, err := os.Open(caseFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		c, err := config.Read(f)
		if err != nil {
			return nil, err
		}
		if cs == nil {
			// A bare case file: periodic box with the given
			// parameters.
			cs = periodicBox()
		}
		cs.cfg = *c
	}
	return cs, nil
}

func periodicBox() *caseSetup {
	return &caseSetup{
		cfg: config.Case{Name: "periodic-box", NX: 32, NY: 32, NZ: 32, Tau: 0.8, Steps: 100},
		bcs: func() *boundary.Set {
			var s boundary.Set
			s.Add(&boundary.Periodic{Axis: 0}, &boundary.Periodic{Axis: 1}, &boundary.Periodic{Axis: 2})
			return &s
		},
		periodicY: true, periodicZ: true,
	}
}

func builtinPreset(name string) (*caseSetup, error) {
	switch name {
	case "cavity":
		return &caseSetup{
			cfg: config.Case{Name: "lid-driven cavity", NX: 32, NY: 32, NZ: 32, Tau: 0.56, Steps: 2000},
			bcs: func() *boundary.Set {
				var s boundary.Set
				s.Add(
					&boundary.NoSlip{Face: core.FaceXMin}, &boundary.NoSlip{Face: core.FaceXMax},
					&boundary.NoSlip{Face: core.FaceZMin}, &boundary.NoSlip{Face: core.FaceZMax},
					&boundary.NoSlip{Face: core.FaceYMin},
					&boundary.MovingNoSlip{Face: core.FaceYMax, U: [3]float64{0.1, 0, 0}},
				)
				return &s
			},
			faceBC: map[core.Face]boundary.Condition{
				core.FaceXMin: &boundary.NoSlip{Face: core.FaceXMin},
				core.FaceXMax: &boundary.NoSlip{Face: core.FaceXMax},
				core.FaceZMin: &boundary.NoSlip{Face: core.FaceZMin},
				core.FaceZMax: &boundary.NoSlip{Face: core.FaceZMax},
				core.FaceYMin: &boundary.NoSlip{Face: core.FaceYMin},
				core.FaceYMax: &boundary.MovingNoSlip{Face: core.FaceYMax, U: [3]float64{0.1, 0, 0}},
			},
		}, nil
	case "channel":
		u := 0.05
		return &caseSetup{
			cfg: config.Case{Name: "channel flow", NX: 64, NY: 24, NZ: 16, Tau: 0.7, Steps: 1000},
			bcs: func() *boundary.Set {
				var s boundary.Set
				s.Add(
					&boundary.Periodic{Axis: 1}, &boundary.Periodic{Axis: 2},
					&boundary.VelocityInlet{Face: core.FaceXMin, U: [3]float64{u, 0, 0}},
					&boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
				)
				return &s
			},
			faceBC: map[core.Face]boundary.Condition{
				core.FaceXMin: &boundary.VelocityInlet{Face: core.FaceXMin, U: [3]float64{u, 0, 0}},
				core.FaceXMax: &boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
			},
			periodicY: true, periodicZ: true,
			init: func(x, y, z int) (float64, float64, float64, float64) {
				return 1, u, 0, 0
			},
		}, nil
	case "cylinder":
		u := 0.08
		d := 12.0
		walls := func(x, y, z int) bool {
			dx, dy := float64(x)+0.5-40, float64(y)+0.5-32.5
			return dx*dx+dy*dy <= (d/2)*(d/2)
		}
		return &caseSetup{
			cfg:   config.Case{Name: "flow past cylinder", NX: 160, NY: 64, NZ: 1, Re: 100, U: u, L: d, Steps: 4000},
			walls: walls,
			bcs: func() *boundary.Set {
				var s boundary.Set
				s.Add(
					&boundary.Periodic{Axis: 2},
					&boundary.FreeSlip{Face: core.FaceYMin}, &boundary.FreeSlip{Face: core.FaceYMax},
					&boundary.VelocityInlet{Face: core.FaceXMin, U: [3]float64{u, 0, 0}},
					&boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
				)
				return &s
			},
			faceBC: map[core.Face]boundary.Condition{
				core.FaceYMin: &boundary.FreeSlip{Face: core.FaceYMin},
				core.FaceYMax: &boundary.FreeSlip{Face: core.FaceYMax},
				core.FaceXMin: &boundary.VelocityInlet{Face: core.FaceXMin, U: [3]float64{u, 0, 0}},
				core.FaceXMax: &boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
			},
			periodicZ: true,
			init: func(x, y, z int) (float64, float64, float64, float64) {
				uy := 0.0
				if x > 40 && x < 60 && y > 32 {
					uy = 0.01 // shedding trigger
				}
				return 1, u, uy, 0
			},
		}, nil
	case "urban":
		u := 0.08
		params := geometry.DefaultUrbanParams()
		params.SizeX, params.SizeY = 96, 96
		params.BlocksX, params.BlocksY = 6, 6
		params.MinHeight, params.MaxHeight = 4, 16
		city := geometry.City(params)
		g := geometry.VoxelGrid{NX: 96, NY: 96, NZ: 24, H: 1}
		mask := geometry.Voxelize(city, g)
		walls := func(x, y, z int) bool { return mask[(y*96+x)*24+z] }
		profile := func(x, y, z int) [3]float64 {
			return [3]float64{u * float64(z+1) / 24.0, 0, 0}
		}
		return &caseSetup{
			cfg:   config.Case{Name: "urban wind", NX: 96, NY: 96, NZ: 24, Tau: 0.52, Steps: 600},
			smag:  0.17,
			walls: walls,
			bcs: func() *boundary.Set {
				var s boundary.Set
				s.Add(
					&boundary.Periodic{Axis: 1},
					&boundary.VelocityInlet{Face: core.FaceXMin, Profile: profile},
					&boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
					&boundary.FreeSlip{Face: core.FaceZMax},
					&boundary.NoSlip{Face: core.FaceZMin},
				)
				return &s
			},
			faceBC: map[core.Face]boundary.Condition{
				core.FaceXMin: &boundary.VelocityInlet{Face: core.FaceXMin, Profile: profile},
				core.FaceXMax: &boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
				core.FaceZMax: &boundary.FreeSlip{Face: core.FaceZMax},
				core.FaceZMin: &boundary.NoSlip{Face: core.FaceZMin},
			},
			periodicY: true,
			init: func(x, y, z int) (float64, float64, float64, float64) {
				p := profile(x, y, z)
				return 1, p[0], p[1], p[2]
			},
		}, nil
	case "suboff":
		u := 0.06
		hull := geometry.Suboff(30, 24, 24, 90, 6)
		g := geometry.VoxelGrid{NX: 180, NY: 48, NZ: 48, H: 1}
		mask := geometry.Voxelize(hull, g)
		walls := func(x, y, z int) bool { return mask[(y*180+x)*48+z] }
		return &caseSetup{
			cfg:   config.Case{Name: "DARPA Suboff", NX: 180, NY: 48, NZ: 48, Tau: 0.53, Steps: 1200},
			smag:  0.17,
			walls: walls,
			bcs: func() *boundary.Set {
				var s boundary.Set
				s.Add(
					&boundary.FreeSlip{Face: core.FaceYMin}, &boundary.FreeSlip{Face: core.FaceYMax},
					&boundary.FreeSlip{Face: core.FaceZMin}, &boundary.FreeSlip{Face: core.FaceZMax},
					&boundary.VelocityInlet{Face: core.FaceXMin, U: [3]float64{u, 0, 0}},
					&boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
				)
				return &s
			},
			faceBC: map[core.Face]boundary.Condition{
				core.FaceYMin: &boundary.FreeSlip{Face: core.FaceYMin},
				core.FaceYMax: &boundary.FreeSlip{Face: core.FaceYMax},
				core.FaceZMin: &boundary.FreeSlip{Face: core.FaceZMin},
				core.FaceZMax: &boundary.FreeSlip{Face: core.FaceZMax},
				core.FaceXMin: &boundary.VelocityInlet{Face: core.FaceXMin, U: [3]float64{u, 0, 0}},
				core.FaceXMax: &boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
			},
			init: func(x, y, z int) (float64, float64, float64, float64) {
				return 1, u, 0, 0
			},
		}, nil
	}
	return nil, fmt.Errorf("unknown preset %q (cavity|channel|cylinder|urban|suboff)", name)
}

func runLocal(ctx context.Context, cs *caseSetup, out, cpPath string, cpEvery int, restore string, reportSecs float64, tracer *trace.Tracer) error {
	var lat *core.Lattice
	var err error
	startStep := 0
	if restore != "" {
		lat, err = swio.Restart(restore)
		if err != nil {
			return err
		}
		startStep = lat.Step()
		fmt.Printf("restored %q at step %d\n", restore, startStep)
	} else {
		lat, err = core.NewLattice(&lattice.D3Q19, cs.cfg.NX, cs.cfg.NY, cs.cfg.NZ, cs.cfg.Tau)
		if err != nil {
			return err
		}
		lat.Smagorinsky = cs.smag
		if cs.cfg.Smagorinsky > 0 {
			lat.Smagorinsky = cs.cfg.Smagorinsky
		}
		if cs.walls != nil {
			for y := 0; y < lat.NY; y++ {
				for x := 0; x < lat.NX; x++ {
					for z := 0; z < lat.NZ; z++ {
						if cs.walls(x, y, z) {
							lat.SetWall(x, y, z)
						}
					}
				}
			}
		}
		if cs.init != nil {
			for y := 0; y < lat.NY; y++ {
				for x := 0; x < lat.NX; x++ {
					for z := 0; z < lat.NZ; z++ {
						if lat.CellTypeAt(x, y, z) == core.Fluid {
							rho, ux, uy, uz := cs.init(x, y, z)
							lat.SetCell(x, y, z, rho, ux, uy, uz)
						}
					}
				}
			}
		}
	}

	bcs := cs.bcs()
	fmt.Printf("%s: %d×%d×%d cells, tau=%.4f, %d steps, %d fluid cells\n",
		cs.cfg.Name, lat.NX, lat.NY, lat.NZ, lat.Tau, cs.cfg.Steps, lat.FluidCells())

	cells := int64(lat.FluidCells())
	mon := perf.NewMonitor(cells)
	tr := tracer.ForRank(0) // local runs trace as rank 0; nil-safe
	lastReport := time.Now()
	for s := startStep + 1; s <= cs.cfg.Steps; s++ {
		// First SIGINT/SIGTERM: save state at the step boundary and leave
		// with the interrupted exit code; -restore picks up right here.
		if ctx.Err() != nil {
			if cpPath != "" {
				if err := swio.Checkpoint(cpPath, lat); err != nil {
					return err
				}
				fmt.Printf("interrupt checkpoint %s at step %d\n", cpPath, lat.Step())
			}
			return errInterrupted
		}
		var endStep func()
		if tr != nil {
			endStep = tr.Scope(trace.TrackStep, "step")
		}
		bcs.Apply(lat)
		mon.StepStart()
		lat.StepFusedParallel(0)
		mon.StepEnd()
		if endStep != nil {
			endStep()
		}
		if cpEvery > 0 && cpPath != "" && s%cpEvery == 0 {
			var endCkpt func()
			if tr != nil {
				endCkpt = tr.Scope(trace.TrackCkpt, "ckpt-write")
			}
			err := swio.Checkpoint(cpPath, lat)
			if endCkpt != nil {
				endCkpt()
			}
			if err != nil {
				return err
			}
		}
		if now := time.Now(); now.Sub(lastReport).Seconds() >= reportSecs {
			fmt.Printf("  step %6d/%d  %s  max|u|=%.4f\n",
				s, cs.cfg.Steps, mon.Rate(), lat.MaxVelocity())
			lastReport = now
		}
	}
	if mon.Steps() > 0 {
		fmt.Printf("completed: %s\n", mon.Summary())
	}
	if cpPath != "" {
		if err := swio.Checkpoint(cpPath, lat); err != nil {
			return err
		}
		fmt.Printf("wrote checkpoint %s\n", cpPath)
	}
	if out != "" {
		if err := writeImages(lat.ComputeMacro(), out); err != nil {
			return err
		}
	}
	return nil
}

// distOpts bundles the distributed-run flags.
type distOpts struct {
	decomp      string
	out         string
	useSunway   bool
	cpPath      string
	cpEvery     int
	restore     string
	faultPlan   string
	maxRestarts int
	allowShrink bool
	spareRanks  int
	ckptLevels  string
	ckptGroup   int
	snapEvery   int
	detector    string
	tracer      *trace.Tracer

	patchTiles     string
	patchWorkers   string
	rebalanceEvery int
}

// supervised reports whether the run needs the self-healing supervisor
// (any checkpointing, restore, fault injection or recovery budget).
func (d distOpts) supervised() bool {
	return d.cpPath != "" || d.cpEvery > 0 || d.restore != "" ||
		d.faultPlan != "" || d.maxRestarts > 0 || d.allowShrink ||
		d.spareRanks > 0 || d.snapEvery > 0 || d.ckptLevels != "" ||
		d.detector != ""
}

func runDistributed(ctx context.Context, cs *caseSetup, d distOpts) error {
	if strings.ToLower(d.decomp) == "patch" {
		return runPatch(ctx, cs, d)
	}
	var px, py int
	if _, err := fmt.Sscanf(strings.ToLower(d.decomp), "%dx%d", &px, &py); err != nil || px < 1 || py < 1 {
		return fmt.Errorf("bad -decomp %q, want e.g. 2x2 or patch", d.decomp)
	}
	opts := psolve.Options{
		GNX: cs.cfg.NX, GNY: cs.cfg.NY, GNZ: cs.cfg.NZ,
		PX: px, PY: py,
		Tau:         cs.cfg.Tau,
		Smagorinsky: cs.smag,
		FaceBC:      cs.faceBC,
		PeriodicY:   cs.periodicY,
		PeriodicZ:   cs.periodicZ,
		Walls:       cs.walls,
		Init:        cs.init,
		OnTheFly:    true,
		Trace:       d.tracer,
	}
	if d.useSunway {
		opts.OnTheFly = false
		opts.Stepper = func(lat *core.Lattice) (psolve.Stepper, error) {
			return swlb.New(lat, sunway.SW26010, swlb.DefaultOptions())
		}
		fmt.Printf("%s: %d×%d×%d cells over %d×%d ranks × simulated SW26010 CGs, %d steps\n",
			cs.cfg.Name, cs.cfg.NX, cs.cfg.NY, cs.cfg.NZ, px, py, cs.cfg.Steps)
	} else {
		fmt.Printf("%s: %d×%d×%d cells over %d×%d simulated MPI ranks, %d steps\n",
			cs.cfg.Name, cs.cfg.NX, cs.cfg.NY, cs.cfg.NZ, px, py, cs.cfg.Steps)
	}

	start := time.Now()
	var m *core.MacroField
	var err error
	startStep := 0
	if d.supervised() {
		if d.restore != "" {
			lat, rerr := swio.Restart(d.restore)
			if rerr != nil {
				return rerr
			}
			opts.Restore = lat
			startStep = lat.Step()
			fmt.Printf("restored %q at step %d\n", d.restore, startStep)
		}
		var inj *fault.Injector
		if d.faultPlan != "" {
			plan, perr := fault.ParsePlan(d.faultPlan)
			if perr != nil {
				return perr
			}
			inj = fault.NewInjector(plan)
			fmt.Printf("fault plan: %s\n", plan)
		}
		var levels resil.Levels
		if d.ckptLevels != "" {
			levels, err = resil.ParseLevels(d.ckptLevels)
			if err != nil {
				return err
			}
		}
		var stats perf.RecoveryStats
		m, stats, err = psolve.Supervise(psolve.SupervisorOptions{
			Ctx:             ctx,
			Opts:            opts,
			Steps:           cs.cfg.Steps,
			CheckpointEvery: d.cpEvery,
			CheckpointPath:  d.cpPath,
			MaxRestarts:     d.maxRestarts,
			AllowShrink:     d.allowShrink,
			SnapshotEvery:   d.snapEvery,
			Levels:          levels,
			GroupSize:       d.ckptGroup,
			SpareRanks:      d.spareRanks,
			Detector:        d.detector,
			Injector:        inj,
			Logf:            log.Printf,
		})
		if errors.Is(err, psolve.ErrCanceled) {
			// The supervisor drained the newest recoverable state into
			// -checkpoint (when set) before reporting the cancellation.
			fmt.Printf("interrupted: %v\n", err)
			return errInterrupted
		}
		if err != nil {
			return err
		}
		if inj != nil {
			fmt.Printf("faults injected: %s\n", inj.Stats())
		}
		if !stats.Clean() {
			fmt.Printf("recovery: %s\n", stats)
		}
	} else {
		m, err = psolve.Run(opts, cs.cfg.Steps)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start).Seconds()
	cells := int64(cs.cfg.NX) * int64(cs.cfg.NY) * int64(cs.cfg.NZ)
	doneSteps := cs.cfg.Steps - startStep
	fmt.Printf("completed %d steps in %.2f s: %s aggregate\n",
		doneSteps, elapsed, perf.Rate(cells*int64(doneSteps), elapsed))
	if d.out != "" {
		return writeImages(m, d.out)
	}
	return nil
}

// runPatch executes -decomp=patch: the domain is tiled into patches
// assigned to a heterogeneous worker roster, with optional periodic
// rebalancing and the patch supervisor when fault-tolerance flags are
// set. Mirrors runDistributed's boundary conventions (x is never
// periodic; y/z follow the case).
func runPatch(ctx context.Context, cs *caseSetup, d distOpts) error {
	if d.useSunway {
		return fmt.Errorf("-sunway is meaningless with -decomp=patch; put 'sunway' workers in -patch-workers instead")
	}
	if d.restore != "" {
		return fmt.Errorf("-restore is not supported with -decomp=patch yet")
	}
	var tx, ty, tz int
	if _, err := fmt.Sscanf(strings.ToLower(d.patchTiles), "%dx%dx%d", &tx, &ty, &tz); err != nil || tx < 1 || ty < 1 || tz < 1 {
		return fmt.Errorf("bad -patch-tiles %q, want e.g. 2x2x1", d.patchTiles)
	}
	workers, err := patch.ParseWorkers(d.patchWorkers)
	if err != nil {
		return err
	}
	opts := patch.Options{
		GNX: cs.cfg.NX, GNY: cs.cfg.NY, GNZ: cs.cfg.NZ,
		TX: tx, TY: ty, TZ: tz,
		Tau:            cs.cfg.Tau,
		Smagorinsky:    cs.smag,
		FaceBC:         cs.faceBC,
		PeriodicY:      cs.periodicY,
		PeriodicZ:      cs.periodicZ,
		Walls:          cs.walls,
		Init:           cs.init,
		Workers:        workers,
		RebalanceEvery: d.rebalanceEvery,
		Trace:          d.tracer,
	}
	fmt.Printf("%s: %d×%d×%d cells as %d×%d×%d patches over %d workers (%s), %d steps\n",
		cs.cfg.Name, cs.cfg.NX, cs.cfg.NY, cs.cfg.NZ, tx, ty, tz, len(workers), d.patchWorkers, cs.cfg.Steps)

	start := time.Now()
	var m *core.MacroField
	var stats *patch.Stats
	if d.supervised() {
		var inj *fault.Injector
		if d.faultPlan != "" {
			plan, perr := fault.ParsePlan(d.faultPlan)
			if perr != nil {
				return perr
			}
			inj = fault.NewInjector(plan)
			fmt.Printf("fault plan: %s\n", plan)
		}
		var levels resil.Levels
		if d.ckptLevels != "" {
			levels, err = resil.ParseLevels(d.ckptLevels)
			if err != nil {
				return err
			}
		}
		m, stats, err = patch.Supervise(patch.SupervisorOptions{
			Ctx:             ctx,
			Opts:            opts,
			Steps:           cs.cfg.Steps,
			CheckpointEvery: d.cpEvery,
			CheckpointPath:  d.cpPath,
			MaxRestarts:     d.maxRestarts,
			SnapshotEvery:   d.snapEvery,
			Levels:          levels,
			GroupSize:       d.ckptGroup,
			Injector:        inj,
			Logf:            log.Printf,
		})
		if errors.Is(err, patch.ErrCanceled) {
			fmt.Printf("interrupted: %v\n", err)
			return errInterrupted
		}
		if err != nil {
			return err
		}
		if inj != nil {
			fmt.Printf("faults injected: %s\n", inj.Stats())
		}
	} else {
		m, stats, err = patch.Run(opts, cs.cfg.Steps)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start).Seconds()
	cells := int64(cs.cfg.NX) * int64(cs.cfg.NY) * int64(cs.cfg.NZ)
	fmt.Printf("completed %d steps in %.2f s: %s aggregate\n",
		cs.cfg.Steps, elapsed, perf.Rate(cells*int64(cs.cfg.Steps), elapsed))
	if stats != nil {
		fmt.Printf("patches: %d over %d workers, %d migrations in %d rebalances",
			stats.Patches, stats.Workers, stats.Migrations, stats.Rebalances)
		if stats.ImbalancePre > 0 {
			fmt.Printf(", imbalance %.2f → %.2f", stats.ImbalancePre, stats.ImbalancePost)
		}
		if stats.Recoveries+stats.Restarts > 0 {
			fmt.Printf(", %d recoveries, %d restarts", stats.Recoveries, stats.Restarts)
		}
		fmt.Println()
	}
	if d.out != "" {
		return writeImages(m, d.out)
	}
	return nil
}

func writeImages(m *core.MacroField, prefix string) error {
	write := func(name string, s *vis.Slice) error {
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := vis.WritePPM(f, s, 0, 0); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", name)
		return nil
	}
	if err := write(prefix+"_speed_z.ppm", vis.SpeedSlice(m, vis.AxisZ, m.NZ/2)); err != nil {
		return err
	}
	return write(prefix+"_speed_y.ppm", vis.SpeedSlice(m, vis.AxisY, m.NY/2))
}
