package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the command once per test binary.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sunwaylb")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building CLI: %v\n%s", err, out)
	}
	return bin
}

func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	cp := filepath.Join(dir, "state.cpk")

	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Local run with checkpoint.
	out := run("-preset", "cavity", "-nx", "12", "-ny", "12", "-nz", "12",
		"-steps", "20", "-checkpoint", cp)
	if !strings.Contains(out, "completed") {
		t.Errorf("no completion line:\n%s", out)
	}
	if _, err := os.Stat(cp); err != nil {
		t.Fatalf("checkpoint missing: %v", err)
	}

	// Restore and continue.
	out = run("-preset", "cavity", "-nx", "12", "-ny", "12", "-nz", "12",
		"-steps", "30", "-restore", cp)
	if !strings.Contains(out, "restored") {
		t.Errorf("no restore line:\n%s", out)
	}

	// Distributed run with images.
	prefix := filepath.Join(dir, "chan")
	out = run("-preset", "channel", "-nx", "24", "-ny", "8", "-nz", "8",
		"-steps", "10", "-decomp", "2x1", "-out", prefix)
	if !strings.Contains(out, "aggregate") {
		t.Errorf("no distributed summary:\n%s", out)
	}
	if _, err := os.Stat(prefix + "_speed_z.ppm"); err != nil {
		t.Errorf("missing image: %v", err)
	}

	// Supervised chaos run: a fault plan kills rank 1 mid-run; the
	// supervisor restores from the periodic checkpoint and finishes.
	chaosCp := filepath.Join(dir, "chaos.cpk")
	out = run("-preset", "channel", "-nx", "24", "-ny", "8", "-nz", "8",
		"-steps", "20", "-decomp", "2x1",
		"-checkpoint", chaosCp, "-checkpoint-every", "5", "-max-restarts", "2",
		"-fault-plan", "seed=7;crash@rank=1,step=12")
	if !strings.Contains(out, "completed") {
		t.Errorf("chaos run did not complete:\n%s", out)
	}
	if !strings.Contains(out, "restarts=1") {
		t.Errorf("chaos run reported no recovery:\n%s", out)
	}
	if !strings.Contains(out, "crashes=1") {
		t.Errorf("chaos run reported no injected crash:\n%s", out)
	}
	if _, err := os.Stat(chaosCp); err != nil {
		t.Errorf("supervised checkpoint missing: %v", err)
	}

	// Distributed restore resumes from the supervised checkpoint.
	out = run("-preset", "channel", "-nx", "24", "-ny", "8", "-nz", "8",
		"-steps", "25", "-decomp", "2x1", "-restore", chaosCp)
	if !strings.Contains(out, "restored") {
		t.Errorf("distributed restore did not resume:\n%s", out)
	}

	// Patch decomposition over a heterogeneous roster with rebalancing.
	out = run("-preset", "cavity", "-nx", "16", "-ny", "16", "-nz", "12",
		"-steps", "10", "-decomp", "patch", "-patch-tiles", "2x2x1",
		"-patch-workers", "core,core*5,sunway", "-rebalance-every", "3")
	if !strings.Contains(out, "patches: 4 over 3 workers") {
		t.Errorf("no patch summary:\n%s", out)
	}

	// Supervised patch run: kill a worker mid-run; its patches migrate to
	// the survivors from the in-memory snapshot wave.
	out = run("-preset", "cavity", "-nx", "16", "-ny", "16", "-nz", "12",
		"-steps", "12", "-decomp", "patch", "-patch-tiles", "2x2x1",
		"-patch-workers", "core,core,core", "-snapshot-every", "2",
		"-max-restarts", "2", "-fault-plan", "seed=3;crash@rank=1,step=6")
	if !strings.Contains(out, "completed") {
		t.Errorf("patch chaos run did not complete:\n%s", out)
	}
	if !strings.Contains(out, "crashes=1") {
		t.Errorf("patch chaos run reported no injected crash:\n%s", out)
	}

	// Bad flags fail cleanly.
	if _, err := exec.Command(bin, "-preset", "nope").CombinedOutput(); err == nil {
		t.Error("unknown preset must exit non-zero")
	}
	if _, err := exec.Command(bin, "-preset", "cavity", "-decomp", "9z9").CombinedOutput(); err == nil {
		t.Error("malformed -decomp must exit non-zero")
	}
	if _, err := exec.Command(bin, "-preset", "cavity",
		"-fault-plan", "crash@rank=0,step=1").CombinedOutput(); err == nil {
		t.Error("-fault-plan without -decomp must exit non-zero")
	}
	if _, err := exec.Command(bin, "-preset", "cavity", "-decomp", "2x1",
		"-fault-plan", "bogus@x=1").CombinedOutput(); err == nil {
		t.Error("malformed -fault-plan must exit non-zero")
	}
	if _, err := exec.Command(bin, "-preset", "cavity", "-decomp", "patch",
		"-patch-workers", "quantum").CombinedOutput(); err == nil {
		t.Error("unknown -patch-workers backend must exit non-zero")
	}
	if _, err := exec.Command(bin, "-preset", "cavity", "-decomp", "patch",
		"-patch-tiles", "2x2").CombinedOutput(); err == nil {
		t.Error("malformed -patch-tiles must exit non-zero")
	}
}
