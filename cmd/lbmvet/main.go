// Lbmvet is SunwayLB's domain-specific static-analysis suite: a
// multichecker that enforces the simulator's correctness contracts across
// the module — LDM budgets on CPE kernels, mpi error discipline, trace
// span pairing and nil-safety, hot-loop allocation freedom, float
// determinism, goroutine lifecycle hygiene, lock pairing, channel
// protocol safety, and per-cell memory-traffic budgets. See DESIGN.md
// "Static-analysis contracts" for the rule-to-paper mapping and README
// "Static analysis" for usage.
//
// Usage:
//
//	go run ./cmd/lbmvet ./...            # whole module
//	go run ./cmd/lbmvet internal/swlb    # one package directory
//	go run ./cmd/lbmvet -rules mpierr,detfloat ./...
//	go run ./cmd/lbmvet -json ./...      # machine-readable findings
//	go run ./cmd/lbmvet -list -json      # machine-readable rule inventory
//
// Suppress an individual finding with a trailing or preceding comment:
//
//	//lint:ignore <rule> <reason>
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sunwaylb/internal/analysis"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		rules   = flag.String("rules", "", "comma-separated rule subset (default: all)")
		list    = flag.Bool("list", false, "list the available rules and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lbmvet [-json] [-rules r1,r2] patterns...\n\nrules:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		if *jsonOut {
			type rule struct {
				Name string `json:"name"`
				Doc  string `json:"doc"`
			}
			var rules []rule
			for _, a := range analysis.All() {
				rules = append(rules, rule{a.Name, a.Doc})
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rules); err != nil {
				fatal(err)
			}
			return
		}
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}

	var selected []string
	if *rules != "" {
		selected = strings.Split(*rules, ",")
	}
	analyzers, unknown := analysis.ByName(selected)
	if len(unknown) > 0 {
		var known []string
		for _, a := range analysis.All() {
			known = append(known, a.Name)
		}
		fatal(fmt.Errorf("unknown rule(s) %s in -rules %q; known rules: %s",
			strings.Join(unknown, ","), *rules, strings.Join(known, ",")))
	}

	findings := analysis.Run(pkgs, analyzers)
	// Report repo-relative paths so output is stable across checkouts.
	for i := range findings {
		if rel, err := filepath.Rel(loader.ModuleDir, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
			findings[i].Pos.Filename = rel
		}
	}

	if *jsonOut {
		out := findings
		if out == nil {
			out = []analysis.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
		if len(findings) == 0 {
			fmt.Printf("lbmvet: %d packages clean\n", len(pkgs))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lbmvet: %v\n", err)
	os.Exit(2)
}
