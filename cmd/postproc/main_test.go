package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// A minimal Chrome trace with an End event that has no matching Begin:
// ReadChrome parses it, Validate must reject it.
const invalidTrace = `{"traceEvents":[
 {"ph":"M","name":"process_name","pid":1,"tid":0,"args":{"name":"rank 0 (wall clock)"}},
 {"ph":"M","name":"thread_name","pid":1,"tid":0,"args":{"name":"step"}},
 {"ph":"E","name":"collide","pid":1,"tid":0,"ts":5}
]}`

const validTrace = `{"traceEvents":[
 {"ph":"M","name":"process_name","pid":1,"tid":0,"args":{"name":"rank 0 (wall clock)"}},
 {"ph":"M","name":"thread_name","pid":1,"tid":0,"args":{"name":"step"}},
 {"ph":"B","name":"collide","pid":1,"tid":0,"ts":1},
 {"ph":"E","name":"collide","pid":1,"tid":0,"ts":5}
]}`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceStatInvalid pins the exit-status contract scripts/ci.sh relies
// on: a trace failing Validate yields an invalidTraceError (mapped to
// exit 1 by main), distinct from plain read errors (exit 2).
func TestTraceStatInvalid(t *testing.T) {
	err := runTraceStat(writeTemp(t, invalidTrace))
	if err == nil {
		t.Fatal("runTraceStat accepted a trace with an unmatched End")
	}
	if !errors.As(err, new(invalidTraceError)) {
		t.Fatalf("want invalidTraceError, got %T: %v", err, err)
	}
}

func TestTraceStatValid(t *testing.T) {
	if err := runTraceStat(writeTemp(t, validTrace)); err != nil {
		t.Fatalf("runTraceStat rejected a valid trace: %v", err)
	}
}

func TestTraceStatUnreadable(t *testing.T) {
	err := runTraceStat(filepath.Join(t.TempDir(), "missing.json"))
	if err == nil {
		t.Fatal("runTraceStat accepted a missing file")
	}
	if errors.As(err, new(invalidTraceError)) {
		t.Fatal("read failure must not be classified as an invalid trace")
	}
}
