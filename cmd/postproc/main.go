// Postproc is SunwayLB's post-processing front end (§IV-B): it reads a
// solver checkpoint, derives macroscopic and vortex-identification fields
// (speed, density, vorticity, Q-criterion) and writes planar slices as PPM
// images plus summary statistics.
//
// Usage:
//
//	postproc -in state.cpk [-field speed|rho|ux|uy|uz|vorticity|q] [-axis x|y|z] [-pos n] [-out slice.ppm]
//	postproc -tracestat run.trace.json
//
// The -tracestat mode reads a Chrome trace-event timeline written by
// `sunwaylb -trace`, validates it, and prints the aggregate analysis
// (per-phase time shares, critical path, load imbalance, stragglers).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"sunwaylb/internal/swio"
	"sunwaylb/internal/trace"
	"sunwaylb/internal/vis"
)

func main() {
	log.SetFlags(0)
	var (
		in        = flag.String("in", "", "checkpoint file (required unless -tracestat)")
		field     = flag.String("field", "speed", "field: speed|rho|ux|uy|uz|vorticity|q")
		axis      = flag.String("axis", "z", "slice normal: x|y|z")
		pos       = flag.Int("pos", -1, "slice position (-1 = middle)")
		out       = flag.String("out", "", "output file (empty = stats only)")
		format    = flag.String("format", "ppm", "output format: ppm|vtk|tecplot")
		traceStat = flag.String("tracestat", "", "analyze a Chrome trace written by sunwaylb -trace (bypasses -in)")
	)
	flag.Parse()
	if *traceStat != "" {
		// Exit status contract (relied on by scripts/ci.sh trace): 0 for a
		// valid trace, 1 when Validate rejects it, 2 when the file cannot
		// be read or parsed at all.
		switch err := runTraceStat(*traceStat); {
		case err == nil:
		case errors.As(err, new(invalidTraceError)):
			log.Printf("postproc: %v", err)
			os.Exit(1)
		default:
			log.Printf("postproc: %v", err)
			os.Exit(2)
		}
		return
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	lat, err := swio.Restart(*in)
	if err != nil {
		log.Fatalf("postproc: %v", err)
	}
	m := lat.ComputeMacro()
	fmt.Printf("checkpoint %s: %d×%d×%d at step %d (tau=%.4f)\n",
		*in, lat.NX, lat.NY, lat.NZ, lat.Step(), lat.Tau)

	// Global statistics.
	var maxU, sumRho float64
	fluid := 0
	for i := range m.Rho {
		if m.Rho[i] == 0 {
			continue
		}
		fluid++
		sumRho += m.Rho[i]
		u := math.Sqrt(m.Ux[i]*m.Ux[i] + m.Uy[i]*m.Uy[i] + m.Uz[i]*m.Uz[i])
		if u > maxU {
			maxU = u
		}
	}
	if fluid > 0 {
		fmt.Printf("fluid cells: %d, mean rho: %.6f, max |u|: %.5f\n",
			fluid, sumRho/float64(fluid), maxU)
	}

	var ax vis.Axis
	var dim int
	switch *axis {
	case "x":
		ax, dim = vis.AxisX, lat.NX
	case "y":
		ax, dim = vis.AxisY, lat.NY
	case "z":
		ax, dim = vis.AxisZ, lat.NZ
	default:
		log.Fatalf("postproc: bad axis %q", *axis)
	}
	p := *pos
	if p < 0 {
		p = dim / 2
	}
	if p >= dim {
		log.Fatalf("postproc: position %d outside axis extent %d", p, dim)
	}

	var slice *vis.Slice
	switch *field {
	case "speed":
		slice = vis.SpeedSlice(m, ax, p)
	case "rho":
		slice = vis.RhoSlice(m, ax, p)
	case "ux":
		slice = vis.ComponentSlice(m, ax, p, 0)
	case "uy":
		slice = vis.ComponentSlice(m, ax, p, 1)
	case "uz":
		slice = vis.ComponentSlice(m, ax, p, 2)
	case "vorticity":
		slice = vis.FieldSlice(m, vis.VorticityZ(m), ax, p)
	case "q":
		slice = vis.FieldSlice(m, vis.QCriterion(m), ax, p)
	default:
		log.Fatalf("postproc: unknown field %q", *field)
	}
	lo, hi := slice.MinMax()
	fmt.Printf("%s slice at %s=%d: range [%.5g, %.5g]\n", *field, *axis, p, lo, hi)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("postproc: %v", err)
		}
		defer f.Close()
		switch *format {
		case "ppm":
			err = vis.WritePPM(f, slice, 0, 0)
		case "vtk":
			// Full-volume exports for ParaView/Tecplot (§IV-B).
			err = vis.WriteVTK(f, m, *in)
		case "tecplot":
			err = vis.WriteTecplot(f, m, *in)
		default:
			log.Fatalf("postproc: unknown format %q", *format)
		}
		if err != nil {
			log.Fatalf("postproc: %v", err)
		}
		fmt.Printf("wrote %s (%s)\n", *out, *format)
	}
}

// invalidTraceError marks a trace that loaded fine but failed Validate,
// so main can map it to a distinct exit status.
type invalidTraceError struct{ err error }

func (e invalidTraceError) Error() string { return e.err.Error() }
func (e invalidTraceError) Unwrap() error { return e.err }

// runTraceStat loads a Chrome trace-event JSON file, checks the
// exporter's invariants (well-nested spans, monotonic timestamps,
// terminated flows) and prints the aggregate timeline analysis. A trace
// that fails Validate returns an invalidTraceError.
func runTraceStat(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadChrome(f)
	if err != nil {
		return err
	}
	if err := trace.Validate(events); err != nil {
		fmt.Printf("trace %s: %d events, INVALID\n", path, len(events))
		return invalidTraceError{fmt.Errorf("%s: %w", path, err)}
	}
	fmt.Printf("trace %s: %d events, valid\n", path, len(events))
	fmt.Print(trace.Analyze(events).String())
	return nil
}
