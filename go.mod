module sunwaylb

go 1.22
